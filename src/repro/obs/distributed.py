"""Cross-process trace propagation and sweep-wide trace merging.

The in-process instruments (:mod:`repro.obs.tracing`,
:mod:`repro.obs.metrics`, :mod:`repro.obs.profile`) stop at the process
boundary — and the production sweep path (:mod:`repro.serve.jobs`) farms
shards to SIGKILL-able worker processes.  This module is the bridge:

* **Context propagation** — the manager stamps every dispatched shard
  with a :class:`TraceContext` (sweep trace id + the manager-side span
  the worker's spans will hang under + the shared timeline origin).
* **Worker capture** — :func:`reset_worker_telemetry` scrubs the
  telemetry state a forked worker inherited from its parent, and
  :class:`ShardCapture` records the worker's spans / metric deltas /
  settle-profile rows for one shard and packs them into a bounded,
  picklable payload that rides back on the existing pipe reply.
* **Merge** — :class:`JobTrace` (owned by the manager, one per traced
  job) assembles manager-side spans and worker payloads into a single
  sweep-wide trace: worker-local span ids are remapped to globally
  unique ids, worker roots are re-parented under their shard's
  manager-side span, timestamps are shifted onto the job's timeline, and
  every worker process becomes its own labeled lane in the
  Chrome/Perfetto export.  A killed worker ships nothing — its shard's
  span is flagged ``telemetry: "lost"`` instead of silently vanishing.
* **Analysis** — :func:`timeline_report` turns a merged trace into the
  operator view: per-worker utilization, queue-wait vs. evaluate-time,
  critical-path extraction and straggler/retry attribution
  (``python -m repro.obs timeline``).

Everything here is deterministic given its inputs: merging the same
payloads in the same order produces byte-identical NDJSON (pinned by
``tests/obs/test_export_edges.py``), which is what makes merged traces
diffable artifacts rather than one-off debugging aids.
"""

from __future__ import annotations

import itertools
import os
import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from . import profile, tracing
from .export import PROCESS_NAME, TRACE_META, meta_record
from .metrics import REGISTRY

#: Payload schema version shipped with every worker telemetry blob.
SCHEMA_VERSION = 1

#: Most spans a single shard reply may carry (newest win; the overflow is
#: counted in ``dropped_spans``).  Bounds the pipe message size by
#: construction — a worker can never wedge the manager with a giant blob.
DEFAULT_WORKER_SPAN_LIMIT = 20_000

#: Most records a merged job trace retains (manager side).
DEFAULT_TRACE_CAPACITY = 500_000


# ---------------------------------------------------------------------------
# Context propagation
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class TraceContext:
    """Everything a worker needs to record spans onto a sweep's timeline.

    ``trace_id`` names the sweep (the job id), ``parent_id`` is the
    manager-side span id the worker's root spans re-parent under, and
    ``epoch_ns`` is the wall-clock origin of the job timeline — the
    worker ships its own wall-clock anchor back so the manager can shift
    worker-relative timestamps onto the shared axis.
    """

    trace_id: str
    parent_id: int
    epoch_ns: int
    capacity: int = tracing.DEFAULT_CAPACITY

    def to_dict(self) -> Dict[str, object]:
        return {"trace_id": self.trace_id, "parent_id": self.parent_id,
                "epoch_ns": self.epoch_ns, "capacity": self.capacity}

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "TraceContext":
        missing = {"trace_id", "parent_id", "epoch_ns"} - set(data)
        if missing:
            raise ValueError(f"trace context missing keys: {sorted(missing)}")
        return cls(trace_id=str(data["trace_id"]),
                   parent_id=int(data["parent_id"]),
                   epoch_ns=int(data["epoch_ns"]),
                   capacity=int(data.get("capacity",
                                         tracing.DEFAULT_CAPACITY)))


# ---------------------------------------------------------------------------
# Worker side
# ---------------------------------------------------------------------------

#: Unlabeled-counter snapshot at the last shard reply (worker process).
_COUNTER_BASELINE: Dict[str, float] = {}


def reset_worker_telemetry() -> None:
    """Scrub all telemetry state in a just-started worker process.

    Under the ``fork`` start method a worker begins life with a full
    copy of the parent's metrics registry, tracing ring buffer and
    active-session flags.  Without this reset the worker's first counter
    delta would re-ship everything the *parent* ever counted (pool-wide
    aggregation would double-count it), and a tracing session enabled in
    the parent would leak parent spans into worker exports.  Called
    first thing in ``repro.serve.jobs._worker_main``.
    """
    tracing.reset()
    profile.disable()
    REGISTRY.reset()
    _COUNTER_BASELINE.clear()


def counter_deltas() -> Dict[str, float]:
    """Unlabeled-counter change since the previous call (worker side).

    Returns only names whose value moved, and advances the baseline, so
    successive shard replies ship disjoint increments: folding every
    reply into the manager registry reconstructs the worker's totals
    exactly once.
    """
    current = REGISTRY.counters()
    deltas = {name: value - _COUNTER_BASELINE.get(name, 0)
              for name, value in current.items()
              if value != _COUNTER_BASELINE.get(name, 0)}
    _COUNTER_BASELINE.clear()
    _COUNTER_BASELINE.update(current)
    return deltas


def fold_counter_deltas(deltas: Optional[Dict[str, object]]) -> None:
    """Fold a worker's counter deltas into this process's registry.

    Makes ``GET /metrics`` pool-wide: the manager's scrape then reflects
    simulation counters from every worker, not just service-side
    bookkeeping.  Names that exist locally as a non-counter kind are
    skipped rather than corrupting the exposition.
    """
    for name in sorted(deltas or {}):
        value = deltas[name]
        if not isinstance(value, (int, float)) or value <= 0:
            continue
        try:
            REGISTRY.inc(name, value)
        except ValueError:
            pass  # registered locally as a gauge/histogram: not foldable


class ShardCapture:
    """Worker-side telemetry capture around one shard evaluation.

    ``begin`` activates tracing/profiling when the dispatch carried a
    :class:`TraceContext` (untraced jobs pay nothing: no enable, no span,
    just one counter-snapshot diff per *shard*, never per cycle), and
    ``finish`` packs the capture into the reply payload.  Exceptions in
    the evaluation flow through ``finish`` too — an "error" reply still
    carries whatever telemetry the attempt produced.
    """

    def __init__(self, context: Optional[TraceContext]) -> None:
        self.context = context
        self.epoch_ns: Optional[int] = None
        self._span = None
        self._payload: Optional[Dict[str, object]] = None
        if context is not None:
            self.epoch_ns = time.time_ns()
            tracing.enable(context.capacity)
            profile.enable()
            self._span = tracing.span("worker.shard",
                                      trace_id=context.trace_id)
            self._span.__enter__()

    @classmethod
    def begin(cls, context_dict: Optional[Dict[str, object]]
              ) -> "ShardCapture":
        context = None
        if context_dict:
            try:
                context = TraceContext.from_dict(context_dict)
            except (TypeError, ValueError):
                context = None  # malformed context: evaluate untraced
        return cls(context)

    def finish(self, span_limit: int = DEFAULT_WORKER_SPAN_LIMIT
               ) -> Dict[str, object]:
        if self._payload is not None:  # idempotent: error-path after a
            return self._payload       # failed "done" send re-packs
        payload: Dict[str, object] = {
            "v": SCHEMA_VERSION,
            "pid": os.getpid(),
            "counters": counter_deltas(),
        }
        self._payload = payload
        if self.context is None:
            return payload
        self._span.__exit__(None, None, None)
        tracing.disable()
        dropped = tracing.stats()["dropped"]
        spans = tracing.drain()
        if len(spans) > span_limit:
            dropped += len(spans) - span_limit
            spans = spans[-span_limit:]  # newest records win, like the ring
        payload.update(epoch_ns=self.epoch_ns, spans=spans,
                       dropped_spans=dropped)
        profiler = profile.disable()
        if profiler is not None and profiler.strategies:
            payload["profile"] = {
                "strategies": {name: dict(bucket) for name, bucket
                               in profiler.strategies.items()},
                "compiles": len(profiler.compiles),
                "compile_seconds": sum(float(c["seconds"])
                                       for c in profiler.compiles),
                "rebinds": profiler.rebinds,
                "rebind_seconds": profiler.rebind_seconds,
            }
        return payload


def merge_profile(into: Dict[str, Dict[str, float]],
                  shipped: Optional[Dict[str, object]]) -> None:
    """Accumulate a shipped settle-profile payload into ``into`` (by name)."""
    if not shipped:
        return
    for strategy, bucket in (shipped.get("strategies") or {}).items():
        target = into.setdefault(strategy, {})
        for field, value in bucket.items():
            if isinstance(value, (int, float)):
                target[field] = target.get(field, 0) + value


# ---------------------------------------------------------------------------
# Merge (manager side)
# ---------------------------------------------------------------------------

def remap_worker_records(spans: Sequence[dict], id_start: int,
                         parent_id: Optional[int], ts_offset_ns: int,
                         ) -> Tuple[List[dict], int]:
    """Rebase worker-local records onto the job timeline.

    Worker span ids restart from 1 every session, so two workers' buffers
    collide; this assigns fresh ids from ``id_start`` (in record order —
    deterministic), points orphaned parents (worker roots, or children of
    ring-evicted spans) at ``parent_id``, and shifts every timestamp by
    ``ts_offset_ns``.  Returns the remapped records and the next free id.
    """
    ids = itertools.count(id_start)
    id_map: Dict[int, int] = {}
    for record in spans:
        old = record.get("id")
        if old is not None:
            id_map[old] = next(ids)
    out = []
    for record in spans:
        merged = dict(record)
        old_id = record.get("id")
        if old_id is not None:
            merged["id"] = id_map[old_id]
        old_parent = record.get("parent")
        merged["parent"] = id_map.get(old_parent, parent_id) \
            if old_parent is not None else parent_id
        merged["ts"] = record.get("ts", 0) + ts_offset_ns
        out.append(merged)
    return out, next(ids)


class JobTrace:
    """One sweep's merged trace, assembled incrementally by the manager.

    Manager-side spans (the job root, per-shard dispatch→reply spans,
    instant lifecycle events) are recorded with explicit timestamps from
    :meth:`now_ns`; worker payloads are merged as their replies arrive.
    All mutation happens under the owning manager's lock.  ``epoch_ns``
    is injectable so merge behaviour is testable deterministically.
    """

    def __init__(self, trace_id: str,
                 capacity: int = DEFAULT_TRACE_CAPACITY,
                 epoch_ns: Optional[int] = None,
                 pid: Optional[int] = None) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.trace_id = trace_id
        self.capacity = capacity
        self.epoch_ns = time.time_ns() if epoch_ns is None else epoch_ns
        self._t0 = time.perf_counter_ns()
        self.pid = os.getpid() if pid is None else pid
        self._next_id = 1
        #: The job root span's id, allocated eagerly so shard spans can
        #: parent under it before the root record exists (it is appended
        #: by :meth:`finish` when the job reaches a terminal state).
        self.root_id = self.next_id()
        self._records: List[dict] = []
        self.dropped = 0
        #: pid -> human lane label for the Chrome/Perfetto export.
        self.processes: Dict[int, str] = {self.pid: "sweep-manager"}
        #: Worker pids that shipped telemetry.
        self.worker_pids: set = set()
        #: Shard attempts whose telemetry died with the worker.
        self.lost_shards = 0
        self.finished = False

    # -- clock / ids -------------------------------------------------------

    def now_ns(self) -> int:
        """Nanoseconds since the job timeline origin."""
        return time.perf_counter_ns() - self._t0

    def next_id(self) -> int:
        span_id = self._next_id
        self._next_id += 1
        return span_id

    def context(self, parent_id: int) -> TraceContext:
        """The :class:`TraceContext` to stamp on a dispatched shard."""
        return TraceContext(trace_id=self.trace_id, parent_id=parent_id,
                            epoch_ns=self.epoch_ns)

    # -- recording ---------------------------------------------------------

    def _append(self, record: dict) -> None:
        if len(self._records) >= self.capacity:
            self.dropped += 1
            return
        self._records.append(record)

    def add_span(self, name: str, start_ns: int, end_ns: int,
                 parent: Optional[int] = None,
                 span_id: Optional[int] = None, tid: int = 0,
                 **args) -> int:
        """Record one manager-side span with explicit timestamps."""
        span_id = self.next_id() if span_id is None else span_id
        self._append({"name": name, "ph": "X", "ts": start_ns,
                      "dur": max(0, end_ns - start_ns), "pid": self.pid,
                      "tid": tid, "id": span_id, "parent": parent,
                      "args": args})
        return span_id

    def add_instant(self, name: str, ts_ns: int,
                    parent: Optional[int] = None, **args) -> int:
        span_id = self.next_id()
        self._append({"name": name, "ph": "i", "ts": ts_ns, "pid": self.pid,
                      "tid": 0, "id": span_id, "parent": parent,
                      "args": args})
        return span_id

    def merge_worker(self, telemetry: Dict[str, object],
                     parent_id: int) -> Dict[str, int]:
        """Fold one shard reply's span payload into the merged trace.

        Worker timestamps are relative to the worker's tracing enable;
        the shipped ``epoch_ns`` anchors them onto the job timeline.
        Returns a small summary for the job's event log.
        """
        spans = list(telemetry.get("spans") or ())
        pid = int(telemetry.get("pid", 0))
        if pid:
            self.worker_pids.add(pid)
            self.processes.setdefault(pid, f"sweep-worker pid={pid}")
        offset = int(telemetry.get("epoch_ns", self.epoch_ns)) - self.epoch_ns
        merged, self._next_id = remap_worker_records(
            spans, self._next_id, parent_id, offset)
        for record in merged:
            self._append(record)
        dropped = int(telemetry.get("dropped_spans", 0))
        self.dropped += dropped
        return {"spans": len(merged), "dropped": dropped, "pid": pid}

    def mark_lost(self, shard_id: int, span_id: int, start_ns: int,
                  attempt: int, reason: str) -> None:
        """Record a shard attempt whose worker died before replying.

        The attempt still gets its manager-side span — flagged
        ``telemetry: "lost"`` — so the timeline shows *when* the loss
        happened instead of a hole.
        """
        self.lost_shards += 1
        self.add_span("shard", start_ns, self.now_ns(), parent=self.root_id,
                      span_id=span_id, shard=shard_id, attempt=attempt,
                      telemetry="lost", reason=reason)

    def finish(self, end_ns: Optional[int] = None, **args) -> None:
        """Append the job root span (idempotent)."""
        if self.finished:
            return
        self.finished = True
        end = self.now_ns() if end_ns is None else end_ns
        self._append({"name": "sweep", "ph": "X", "ts": 0, "dur": end,
                      "pid": self.pid, "tid": 0, "id": self.root_id,
                      "parent": None,
                      "args": {"trace_id": self.trace_id, **args}})

    # -- export ------------------------------------------------------------

    def export_records(self) -> List[dict]:
        """The merged trace in raw-record form (header + lanes + spans).

        Deterministic given the recorded state: the header and
        ``process_name`` metadata lead, then every span/instant record
        sorted by ``(ts, id)`` — so identical merges export
        byte-identical NDJSON.
        """
        header = meta_record(
            TRACE_META, pid=self.pid, trace_id=self.trace_id,
            distributed=True, schema=SCHEMA_VERSION,
            dropped_spans=self.dropped,
            workers=sorted(self.worker_pids),
            lost_shards=self.lost_shards)
        lanes = [meta_record(PROCESS_NAME, pid=pid, name=label)
                 for pid, label in sorted(self.processes.items())]
        body = sorted(self._records,
                      key=lambda r: (r.get("ts", 0), r.get("id") or 0))
        return [header] + lanes + body

    def __len__(self) -> int:
        return len(self._records)


# ---------------------------------------------------------------------------
# Timeline analysis (python -m repro.obs timeline)
# ---------------------------------------------------------------------------

def _fmt_ms(ns: float) -> str:
    return f"{ns / 1e6:.1f}"


def timeline_report(records: Sequence[dict]) -> str:
    """Sweep-timeline analysis of a (merged) trace.

    Four sections: per-worker utilization, queue-wait vs. evaluate-time
    breakdown per shard, the critical path (root → latest-finishing
    descendant chain), and straggler/retry/lost-telemetry attribution.
    Works best on merged distributed traces (``GET /sweeps/<id>/trace``)
    but degrades gracefully on single-process traces.
    """
    spans = [r for r in records if r.get("ph") == "X"]
    if not spans:
        return "no spans in trace — nothing to analyze"
    lines: List[str] = []
    by_id = {r["id"]: r for r in spans if r.get("id") is not None}
    children: Dict[Optional[int], List[dict]] = {}
    for record in spans:
        children.setdefault(record.get("parent"), []).append(record)
    roots = [r for r in spans
             if r.get("parent") is None and r.get("id") is not None]
    root = max(roots, key=lambda r: r.get("dur", 0)) if roots else None
    start = min(r.get("ts", 0) for r in spans)
    end = max(r.get("ts", 0) + r.get("dur", 0) for r in spans)
    window = root["dur"] if root and root.get("dur") else max(1, end - start)
    header = f"timeline: {_fmt_ms(window)} ms total"
    if root is not None:
        header += f" (root span {root['name']!r})"
    lines.append(header)

    labels = {r["pid"]: (r.get("args") or {}).get("name")
              for r in records
              if r.get("ph") == "M" and r.get("name") == PROCESS_NAME}
    shard_spans = sorted((r for r in spans if r["name"] == "shard"),
                         key=lambda r: r.get("ts", 0))
    worker_spans = [r for r in spans if r["name"] == "worker.shard"]
    eval_by_parent = {r.get("parent"): r for r in worker_spans}

    # -- per-worker utilization -------------------------------------------
    lanes: Dict[int, Dict[str, float]] = {}
    for record in worker_spans:
        lane = lanes.setdefault(record["pid"], {"busy": 0, "shards": 0})
        lane["busy"] += record.get("dur", 0)
        lane["shards"] += 1
    if lanes:
        lines.append("")
        lines.append("per-worker utilization:")
        lines.append(f"  {'worker':<24} {'shards':>6} {'busy ms':>10} "
                     f"{'util %':>7}")
        for pid in sorted(lanes):
            lane = lanes[pid]
            label = labels.get(pid) or f"pid={pid}"
            lines.append(
                f"  {label:<24} {int(lane['shards']):>6} "
                f"{_fmt_ms(lane['busy']):>10} "
                f"{lane['busy'] / window * 100:>6.1f}%")

    # -- queue wait vs evaluate time --------------------------------------
    if shard_spans:
        root_ts = root.get("ts", 0) if root is not None else start
        waits, evals, overheads = [], [], []
        for shard in shard_spans:
            waits.append(shard.get("ts", 0) - root_ts)
            worker = eval_by_parent.get(shard.get("id"))
            evaluated = worker.get("dur", 0) if worker is not None else 0
            evals.append(evaluated)
            overheads.append(max(0, shard.get("dur", 0) - evaluated))
        lines.append("")
        lines.append(
            f"shard breakdown ({len(shard_spans)} attempt(s)): "
            f"queue-wait mean {_fmt_ms(sum(waits) / len(waits))} ms "
            f"(max {_fmt_ms(max(waits))}), "
            f"evaluate mean {_fmt_ms(sum(evals) / len(evals))} ms, "
            f"dispatch/IPC overhead mean "
            f"{_fmt_ms(sum(overheads) / len(overheads))} ms")

    # -- critical path -----------------------------------------------------
    if root is not None:
        lines.append("")
        lines.append("critical path (latest-finishing chain):")
        node = root
        depth = 0
        while node is not None and depth < 12:
            where = labels.get(node["pid"]) or f"pid={node['pid']}"
            args = node.get("args") or {}
            detail = "".join(f" {k}={args[k]}" for k in ("shard", "attempt")
                             if k in args)
            lines.append(f"  {'  ' * depth}{node['name']} "
                         f"[{where}]{detail}: {_fmt_ms(node.get('dur', 0))} "
                         f"ms @ {_fmt_ms(node.get('ts', 0))}")
            kids = children.get(node.get("id"))
            node = max(kids, key=lambda r: r.get("ts", 0) + r.get("dur", 0)) \
                if kids else None
            depth += 1

    # -- stragglers, retries, losses --------------------------------------
    flagged: List[str] = []
    if len(shard_spans) >= 2:
        durations = sorted(r.get("dur", 0) for r in shard_spans)
        median = durations[len(durations) // 2]
        for shard in shard_spans:
            if median and shard.get("dur", 0) > 1.5 * median:
                args = shard.get("args") or {}
                flagged.append(
                    f"straggler: shard {args.get('shard', '?')} took "
                    f"{_fmt_ms(shard['dur'])} ms "
                    f"({shard['dur'] / median:.1f}x the median) on "
                    f"worker_pid={args.get('worker_pid', '?')}")
    for shard in shard_spans:
        args = shard.get("args") or {}
        if args.get("attempt", 1) and int(args.get("attempt", 1)) > 1:
            flagged.append(f"retry: shard {args.get('shard', '?')} "
                           f"attempt {args['attempt']} "
                           f"({args.get('reason', 'redispatched')})")
        if args.get("telemetry") == "lost":
            flagged.append(f"lost telemetry: shard {args.get('shard', '?')} "
                           f"attempt {args.get('attempt', '?')} "
                           f"({args.get('reason', 'worker died')})")
    if flagged:
        lines.append("")
        lines.append("attribution flags:")
        lines.extend(f"  - {line}" for line in flagged)
    elif shard_spans:
        lines.append("")
        lines.append("attribution flags: none "
                     "(no stragglers, retries or lost telemetry)")
    # keep by_id referenced for future chain analyses (and linters quiet)
    del by_id
    return "\n".join(lines)
