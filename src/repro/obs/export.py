"""Trace-record export, import, summary and validation.

Two interchangeable file formats for the records produced by
:mod:`repro.obs.tracing`:

* **NDJSON** — one record dict per line, lossless (keeps span ids,
  parents and nanosecond fields).  The round-trip format for
  ``python -m repro.obs summarize``.
* **Chrome trace-event JSON** — ``{"traceEvents": [...]}`` with complete
  ``"X"`` duration events and ``"i"`` instant events, microsecond
  timestamps, sorted by ``ts``.  Loadable by Perfetto
  (https://ui.perfetto.dev) and ``chrome://tracing``.

:func:`summarize` aggregates either format into a per-phase table plus a
wall-time *attribution* figure: for the longest root span, the fraction
of its duration covered by its direct children — the "≥ 95% of wall time
is attributed to named phases" acceptance metric of the telemetry layer.
:func:`validate_chrome` checks the structural invariants the trace
integrity tests (and the CI observability smoke job) pin: monotonic
``ts``, complete events only, stable ``pid``/``tid``.
"""

from __future__ import annotations

import json
import os
from typing import Dict, List, Optional, Sequence, Tuple

#: Name of the trace-level metadata header record (``ph == "M"``).
TRACE_META = "trace.meta"
#: Name of the per-process lane-label metadata record (Chrome convention).
PROCESS_NAME = "process_name"


def meta_record(record_name: str = TRACE_META, pid: Optional[int] = None,
                **args) -> dict:
    """A metadata record (``ph == "M"``) in the raw-record schema.

    Metadata records carry trace-level facts that are not spans: the
    ``trace.meta`` header holds truncation accounting
    (``dropped_spans``) and distributed-merge provenance, and
    ``process_name`` records label the per-worker process lanes of a
    merged trace (the Chrome/Perfetto convention, which also licenses a
    multi-pid trace past :func:`validate_chrome` — the lane label rides
    in ``args["name"]``, hence the ``record_name`` parameter spelling).
    """
    return {"name": record_name, "ph": "M", "ts": 0,
            "pid": os.getpid() if pid is None else pid, "tid": 0,
            "id": None, "parent": None, "args": args}


def dropped_spans(records: Sequence[dict]) -> int:
    """Total ``dropped_spans`` declared by the trace's metadata headers."""
    total = 0
    for record in records:
        if record.get("ph") == "M" and record.get("name") == TRACE_META:
            value = (record.get("args") or {}).get("dropped_spans", 0)
            if isinstance(value, (int, float)):
                total += int(value)
    return total


# ---------------------------------------------------------------------------
# Writers / readers
# ---------------------------------------------------------------------------

def write_ndjson(records: Sequence[dict], path) -> None:
    """One JSON record per line, in buffer (completion) order."""
    with open(path, "w", encoding="utf-8") as handle:
        for record in records:
            handle.write(json.dumps(record, sort_keys=True) + "\n")


def read_ndjson(path) -> List[dict]:
    records = []
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if line:
                records.append(json.loads(line))
    return records


def to_chrome(records: Sequence[dict]) -> dict:
    """Chrome trace-event payload from raw records (sorted by ``ts``)."""
    events = []
    for record in sorted(records, key=lambda r: r["ts"]):
        event = {
            "name": record["name"],
            "cat": "repro",
            "ph": record["ph"],
            "ts": record["ts"] / 1000.0,        # ns -> us
            "pid": record["pid"],
            "tid": record["tid"],
            "args": dict(record.get("args") or {}),
        }
        if record["ph"] == "X":
            event["dur"] = record["dur"] / 1000.0
        elif record["ph"] == "i":
            event["s"] = "t"                     # thread-scoped instant
        # "M" metadata events carry only name/pid/args
        events.append(event)
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def write_chrome(records: Sequence[dict], path) -> None:
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(to_chrome(records), handle, indent=1)


def write_trace(records: Sequence[dict], path) -> str:
    """Write ``records`` in the format ``path``'s extension selects.

    ``.ndjson`` (or ``.jsonl``) writes NDJSON; anything else writes the
    Chrome trace-event form.  Returns the format written.
    """
    if str(path).endswith((".ndjson", ".jsonl")):
        write_ndjson(records, path)
        return "ndjson"
    write_chrome(records, path)
    return "chrome"


def read_trace(path) -> List[dict]:
    """Read either format back into raw-record form.

    Chrome payloads lose span ids/parents (the format has no complete-event
    nesting ids), so records reconstructed from them carry
    ``id=None``/``parent=None``; summaries still work, tree-accurate
    attribution needs the NDJSON form.
    """
    text = open(path, "r", encoding="utf-8").read()
    if str(path).endswith((".ndjson", ".jsonl")):
        return [json.loads(line) for line in text.splitlines() if line.strip()]
    # Other extensions: a single Chrome trace-event JSON document — unless
    # the document is not one JSON object, in which case fall through to
    # line-parsing (an NDJSON trace under a surprising extension).
    try:
        payload = json.loads(text)
    except ValueError:
        payload = None
    if isinstance(payload, dict):
        records = []
        for event in payload.get("traceEvents", []):
            record = {
                "name": event.get("name"), "ph": event.get("ph"),
                "ts": int(event.get("ts", 0) * 1000),
                "pid": event.get("pid"), "tid": event.get("tid"),
                "id": event.get("id"), "parent": None,
                "args": event.get("args", {}),
            }
            if event.get("ph") == "X":
                record["dur"] = int(event.get("dur", 0) * 1000)
            records.append(record)
        return records
    return [json.loads(line) for line in text.splitlines() if line.strip()]


# ---------------------------------------------------------------------------
# Validation
# ---------------------------------------------------------------------------

def validate_chrome(payload: dict) -> List[str]:
    """Structural problems in a Chrome trace payload (empty == valid).

    A single-process trace must use one stable pid.  A *merged* trace
    (worker spans folded into one sweep-wide timeline) legitimately
    spans several pids — but then every pid must be labeled by a
    ``process_name`` metadata event, so an unlabeled pid mixture is
    still flagged as corruption rather than silently accepted.
    """
    problems: List[str] = []
    events = payload.get("traceEvents")
    if not isinstance(events, list):
        return ["payload has no traceEvents list"]
    if not events:
        problems.append("trace contains zero events")
    last_ts = None
    pids = set()
    labeled_pids = set()
    for i, event in enumerate(events):
        where = f"event[{i}] ({event.get('name')!r})"
        ph = event.get("ph")
        if ph == "M":
            if "name" not in event or "pid" not in event:
                problems.append(f"{where}: metadata event without name/pid")
            elif event["name"] == PROCESS_NAME:
                labeled_pids.add(event["pid"])
            continue
        if ph not in ("X", "i"):
            problems.append(f"{where}: phase {ph!r} is not a complete 'X' "
                            "or instant 'i' event")
            continue
        for field in ("name", "ts", "pid", "tid"):
            if field not in event:
                problems.append(f"{where}: missing {field!r}")
        if ph == "X" and not isinstance(event.get("dur"), (int, float)):
            problems.append(f"{where}: complete event without numeric dur")
        ts = event.get("ts")
        if isinstance(ts, (int, float)):
            if last_ts is not None and ts < last_ts:
                problems.append(f"{where}: ts {ts} < previous {last_ts} "
                                "(events must be sorted)")
            last_ts = ts
        pids.add(event.get("pid"))
    if len(pids) > 1 and not pids <= labeled_pids:
        unlabeled = pids - labeled_pids
        problems.append(
            f"unstable pid set: {sorted(map(str, pids))} "
            f"(pids {sorted(map(str, unlabeled))} carry no process_name "
            "metadata — merged traces must label every process lane)")
    return problems


# ---------------------------------------------------------------------------
# Summary / attribution
# ---------------------------------------------------------------------------

def phase_totals(records: Sequence[dict]) -> Dict[str, Dict[str, float]]:
    """Per-name aggregates over span records: count, total/mean/max ms."""
    totals: Dict[str, Dict[str, float]] = {}
    for record in records:
        if record.get("ph") != "X":
            continue
        entry = totals.setdefault(record["name"],
                                  {"count": 0, "total_ms": 0.0, "max_ms": 0.0})
        dur_ms = record.get("dur", 0) / 1e6
        entry["count"] += 1
        entry["total_ms"] += dur_ms
        entry["max_ms"] = max(entry["max_ms"], dur_ms)
    for entry in totals.values():
        entry["mean_ms"] = entry["total_ms"] / max(1, entry["count"])
    return totals


def attribution(records: Sequence[dict]) -> Optional[Tuple[dict, float]]:
    """(root span, covered fraction) for the longest root span, or ``None``.

    The covered fraction is the share of the root's duration accounted
    for by its *direct* children — the span-tree wall-time attribution
    the telemetry acceptance criterion gates on.  Needs id/parent fields
    (NDJSON traces, or in-process records).
    """
    spans = [r for r in records if r.get("ph") == "X"]
    roots = [r for r in spans
             if r.get("parent") is None and r.get("id") is not None]
    if not roots:
        return None
    root = max(roots, key=lambda r: r.get("dur", 0))
    if not root.get("dur"):
        return root, 0.0
    covered = sum(r.get("dur", 0) for r in spans
                  if r.get("parent") == root["id"])
    return root, min(1.0, covered / root["dur"])


def summarize(records: Sequence[dict]) -> str:
    """Human-readable per-phase summary table (plus attribution when known)."""
    spans = [r for r in records if r.get("ph") == "X"]
    events = [r for r in records if r.get("ph") == "i"]
    lines = [f"{len(spans)} span(s), {len(events)} instant event(s)"]
    pids = sorted({r.get("pid") for r in spans + events}, key=str)
    if len(pids) > 1:
        lines.append(f"merged trace across {len(pids)} process(es): "
                     f"{', '.join(map(str, pids))}")
    dropped = dropped_spans(records)
    if dropped:
        lines.append(f"WARNING: {dropped} span(s) dropped "
                     "(ring buffer wrapped — the trace is truncated)")
    totals = phase_totals(records)
    if totals:
        width = max(len(name) for name in totals)
        lines.append(f"{'phase':<{width}}  {'count':>7}  {'total ms':>10}  "
                     f"{'mean ms':>9}  {'max ms':>9}")
        for name in sorted(totals, key=lambda n: -totals[n]["total_ms"]):
            entry = totals[name]
            lines.append(
                f"{name:<{width}}  {entry['count']:>7}  "
                f"{entry['total_ms']:>10.3f}  {entry['mean_ms']:>9.3f}  "
                f"{entry['max_ms']:>9.3f}")
    attributed = attribution(records)
    if attributed is not None:
        root, fraction = attributed
        lines.append(
            f"root span {root['name']!r}: {root.get('dur', 0) / 1e6:.3f} ms, "
            f"{fraction * 100:.1f}% attributed to direct children")
    return "\n".join(lines)
