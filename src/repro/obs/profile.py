"""Opt-in settle profiling: where simulation wall time actually goes.

Enabled via :func:`enable` (the ``--profile`` flag on the explore/verify
CLIs), a process-global :class:`SettleProfiler` accumulates, per settle
strategy:

* step calls, simulated cycles and wall seconds (→ cycles/second);
* settle delta-iteration counts (for the compiled backend these are the
  guarded/cyclic-group convergence rounds — 1 per settle on a fully
  scheduled design);
* analysis-miss (fallback) hits — settles where the compiled schedule was
  caught missing a write and self-corrected through the fixpoint oracle;

plus per-design compile/rebind accounting: emission time, cyclic-group
counts and sizes, opaque (non-dissolved) process counts.

Like tracing, the disabled path is one attribute read
(:func:`active` returning ``None``) and allocates nothing; the simulator
only enters its instrumented step loop while a profiler is installed.
"""

from __future__ import annotations

import threading
from typing import Dict, List, Optional


class SettleProfiler:
    """Accumulates per-strategy settle statistics (thread-safe)."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.strategies: Dict[str, Dict[str, float]] = {}
        self.compiles: List[Dict[str, object]] = []
        self.rebinds = 0
        self.rebind_seconds = 0.0

    def _bucket(self, strategy: str) -> Dict[str, float]:
        bucket = self.strategies.get(strategy)
        if bucket is None:
            bucket = self.strategies[strategy] = {
                "steps": 0, "cycles": 0, "seconds": 0.0,
                "settle_iterations": 0, "fallback_hits": 0, "sims": 0,
            }
        return bucket

    # -- recording hooks (called by the simulator's profiled paths) --------

    def record_sim(self, strategy: str) -> None:
        with self._lock:
            self._bucket(strategy)["sims"] += 1

    def record_step(self, strategy: str, cycles: int, seconds: float,
                    settle_iterations: int = 0,
                    fallback_hits: int = 0) -> None:
        with self._lock:
            bucket = self._bucket(strategy)
            bucket["steps"] += 1
            bucket["cycles"] += cycles
            bucket["seconds"] += seconds
            bucket["settle_iterations"] += settle_iterations
            bucket["fallback_hits"] += fallback_hits

    def record_compile(self, seconds: float, report=None) -> None:
        entry: Dict[str, object] = {"seconds": seconds}
        if report is not None:
            entry.update(
                n_procs=report.n_procs,
                n_transpiled=report.n_transpiled_procs,
                n_opaque=report.n_opaque_procs,
                n_cyclic_groups=report.n_cyclic_groups,
                cyclic_group_sizes=list(report.cyclic_group_sizes),
                guarded=report.guarded,
            )
        with self._lock:
            self.compiles.append(entry)

    def record_rebind(self, seconds: float) -> None:
        with self._lock:
            self.rebinds += 1
            self.rebind_seconds += seconds

    # -- reporting ---------------------------------------------------------

    def report(self) -> str:
        """The ``--profile`` table: one row per exercised settle strategy."""
        with self._lock:
            lines = ["settle profile (per strategy):"]
            header = (f"  {'strategy':<18} {'sims':>5} {'steps':>8} "
                      f"{'cycles':>10} {'settles':>9} {'fallback':>8} "
                      f"{'wall s':>9} {'kcyc/s':>9}")
            lines.append(header)
            for strategy in sorted(self.strategies):
                b = self.strategies[strategy]
                kcps = (b["cycles"] / b["seconds"] / 1e3
                        if b["seconds"] else 0.0)
                lines.append(
                    f"  {strategy:<18} {int(b['sims']):>5} "
                    f"{int(b['steps']):>8} {int(b['cycles']):>10} "
                    f"{int(b['settle_iterations']):>9} "
                    f"{int(b['fallback_hits']):>8} {b['seconds']:>9.3f} "
                    f"{kcps:>9.1f}")
            if self.compiles:
                total = sum(float(c["seconds"]) for c in self.compiles)
                cyclic = sum(int(c.get("n_cyclic_groups", 0))
                             for c in self.compiles)
                opaque = sum(int(c.get("n_opaque", 0))
                             for c in self.compiles)
                lines.append(
                    f"compile: {len(self.compiles)} emission(s), "
                    f"{total:.3f} s total; {cyclic} cyclic group(s), "
                    f"{opaque} opaque proc(s)")
            if self.rebinds:
                lines.append(f"rebind: {self.rebinds} hit(s), "
                             f"{self.rebind_seconds:.3f} s total")
            return "\n".join(lines)


#: The installed profiler, or ``None`` (the common case).
_ACTIVE: Optional[SettleProfiler] = None


def active() -> Optional[SettleProfiler]:
    """The installed profiler, or ``None`` — one attribute read."""
    return _ACTIVE


def enable() -> SettleProfiler:
    """Install (and return) a fresh process-global profiler."""
    global _ACTIVE
    _ACTIVE = SettleProfiler()
    return _ACTIVE


def disable() -> Optional[SettleProfiler]:
    """Uninstall the profiler; returns it so its report can still be read."""
    global _ACTIVE
    profiler, _ACTIVE = _ACTIVE, None
    return profiler
