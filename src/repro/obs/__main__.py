"""Command-line entry: ``python -m repro.obs`` — trace-file tooling.

Four subcommands over the trace files the ``--trace`` CLI flags (and the
:mod:`repro.obs.export` API) produce::

    python -m repro.obs summarize trace.ndjson
        Per-phase span aggregates plus the root-span wall-time
        attribution figure.

    python -m repro.obs convert trace.ndjson trace.json
        Re-encode between formats by extension: ``.ndjson``/``.jsonl``
        is the lossless line format, anything else is Chrome
        trace-event JSON (load it at https://ui.perfetto.dev).

    python -m repro.obs validate trace.json --min-attribution 95 --strict
        Check the Chrome trace-event invariants (monotonic ``ts``,
        complete ``X``/instant ``i`` events only, stable ``pid`` — or
        labeled per-process lanes for merged traces) and, optionally,
        that the span tree attributes at least the given percentage of
        the root span's wall time to named child phases.  Ring-buffer
        truncation (a ``dropped_spans`` header > 0) warns by default and
        fails under ``--strict``.  Exit status 1 on any violation —
        this is what the CI observability smoke job gates on.

    python -m repro.obs timeline trace.ndjson
        Sweep-timeline analysis of a merged distributed trace
        (``GET /sweeps/<id>/trace``): per-worker utilization,
        queue-wait vs. evaluate-time breakdown, critical path and
        straggler/retry attribution.

Operator guide: ``docs/observability.md``.
"""

from __future__ import annotations

import argparse
import sys

from .distributed import timeline_report
from .export import (
    attribution,
    dropped_spans,
    read_trace,
    summarize,
    to_chrome,
    validate_chrome,
    write_trace,
)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs",
        description="Summarize, convert and validate repro trace files.",
        epilog="Trace files come from the --trace flag of "
               "python -m repro.explore (see docs/observability.md).")
    sub = parser.add_subparsers(dest="command", required=True)

    cmd = sub.add_parser("summarize", help="per-phase span summary table")
    cmd.add_argument("trace", help="trace file (NDJSON or Chrome JSON)")

    cmd = sub.add_parser("convert", help="re-encode a trace by extension")
    cmd.add_argument("trace", help="input trace file")
    cmd.add_argument("output", help="output path (.ndjson/.jsonl or .json)")

    cmd = sub.add_parser("validate",
                         help="check trace-event structural invariants")
    cmd.add_argument("trace", help="trace file (NDJSON or Chrome JSON)")
    cmd.add_argument("--min-attribution", type=float, default=None,
                     metavar="PCT",
                     help="also require >= PCT%% of the root span's wall "
                          "time to be attributed to its child phases "
                          "(needs an NDJSON trace for tree structure)")
    cmd.add_argument("--strict", action="store_true",
                     help="fail (instead of warn) on truncated traces — "
                          "ones whose dropped_spans header is non-zero")

    cmd = sub.add_parser("timeline",
                         help="per-worker utilization, queue-wait vs. "
                              "evaluate breakdown, critical path and "
                              "straggler attribution for a merged trace")
    cmd.add_argument("trace", help="merged trace file (NDJSON preferred)")
    return parser


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    try:
        records = read_trace(args.trace)
    except (OSError, ValueError) as exc:
        print(f"cannot read trace {args.trace!r}: {exc}", file=sys.stderr)
        return 2

    if args.command == "summarize":
        print(summarize(records))
        return 0

    if args.command == "convert":
        fmt = write_trace(records, args.output)
        print(f"{len(records)} record(s) written to {args.output} ({fmt})")
        return 0

    if args.command == "timeline":
        print(timeline_report(records))
        return 0

    # validate
    problems = validate_chrome(to_chrome(records))
    dropped = dropped_spans(records)
    if dropped:
        message = (f"trace is truncated: {dropped} span(s) dropped "
                   "(ring buffer wrapped — raise the tracing capacity)")
        if args.strict:
            problems.append(message)
        else:
            print(f"WARNING: {message}", file=sys.stderr)
    if args.min_attribution is not None:
        attributed = attribution(records)
        if attributed is None:
            problems.append(
                "no root span with id/parent structure found (use an "
                "NDJSON trace for attribution checks)")
        else:
            root, fraction = attributed
            if fraction * 100 < args.min_attribution:
                problems.append(
                    f"root span {root['name']!r} attributes only "
                    f"{fraction * 100:.1f}% of its wall time to child "
                    f"phases (need {args.min_attribution}%)")
            else:
                print(f"attribution: {fraction * 100:.1f}% of "
                      f"{root['name']!r} covered by child phases")
    if problems:
        print(f"trace {args.trace} is INVALID:", file=sys.stderr)
        for problem in problems:
            print(f"  - {problem}", file=sys.stderr)
        return 1
    print(f"trace {args.trace} is valid "
          f"({len(records)} record(s))")
    return 0


if __name__ == "__main__":
    sys.exit(main())
