"""Structured tracing: nestable spans into an in-process ring buffer.

Tracing is **off by default** and the disabled path is engineered to stay
off the simulator's hot loop: :func:`enabled` is one attribute read, and
:func:`span` returns a shared stateless no-op context manager without
allocating anything.  Call sites on per-cycle paths guard with
``if tracing.enabled():`` so even that function call never happens per
cycle (``tests/obs/test_overhead.py`` pins both properties).

When enabled (:func:`enable`), ``with span("settle", strategy=...)``
records a completed-span dict into a bounded ring buffer
(:class:`collections.deque`; overflow evicts the oldest records and
counts them in :func:`stats`).  Spans nest through a thread-local stack,
so every record carries its parent's id and the whole buffer reconstructs
a span *tree* per thread.  :func:`add_event` records zero-duration
instant events (the job manager's shard lifecycle uses these).

Records are plain dicts with a stable schema::

    {"name": str, "ph": "X"|"i", "ts": int (ns, relative to enable()),
     "dur": int (ns, spans only), "pid": int, "tid": int,
     "id": int, "parent": int|None, "args": {...}}

Export to NDJSON / Chrome trace-event JSON lives in
:mod:`repro.obs.export`.
"""

from __future__ import annotations

import itertools
import os
import threading
import time
from collections import deque
from typing import Dict, List, Optional

#: Default ring-buffer capacity (completed records, spans + events).
DEFAULT_CAPACITY = 200_000


class _TraceState:
    """The module-global tracing switchboard."""

    __slots__ = ("active", "buffer", "capacity", "dropped", "t0",
                 "lock", "local", "ids", "session")

    def __init__(self) -> None:
        self.active = False
        self.buffer: deque = deque()
        self.capacity = 0
        self.dropped = 0
        self.t0 = 0
        self.lock = threading.Lock()
        self.local = threading.local()
        self.ids = itertools.count(1)
        self.session = 0


_STATE = _TraceState()


def enabled() -> bool:
    """Is tracing currently recording?  (One attribute read — hot-path safe.)"""
    return _STATE.active


def enable(capacity: int = DEFAULT_CAPACITY) -> None:
    """Start recording spans into a fresh ring buffer of ``capacity``."""
    if capacity < 1:
        raise ValueError(f"capacity must be >= 1, got {capacity}")
    with _STATE.lock:
        _STATE.buffer = deque(maxlen=capacity)
        _STATE.capacity = capacity
        _STATE.dropped = 0
        _STATE.t0 = time.perf_counter_ns()
        _STATE.ids = itertools.count(1)
        _STATE.session += 1
        _STATE.active = True


def disable() -> None:
    """Stop recording.  The buffer keeps its records until the next enable."""
    _STATE.active = False


def reset() -> None:
    """Hard-reset every piece of tracing state to the never-enabled form.

    A forked worker process inherits the parent's ring buffer, active
    flag, id counter and per-thread span stacks wholesale; replaying (or
    double-exporting) any of that would corrupt the merged sweep trace.
    :func:`repro.obs.distributed.reset_worker_telemetry` calls this at
    worker startup so a worker-side tracing session always starts from a
    clean slate with local span ids counting from 1.
    """
    with _STATE.lock:
        _STATE.active = False
        _STATE.buffer = deque()
        _STATE.capacity = 0
        _STATE.dropped = 0
        _STATE.t0 = 0
        _STATE.ids = itertools.count(1)
        # Bumping the session invalidates every thread's cached span
        # stack (see _stack), including stacks copied in by fork.
        _STATE.session += 1


def stats() -> Dict[str, int]:
    """Buffer occupancy and overflow accounting."""
    return {"recorded": len(_STATE.buffer), "dropped": _STATE.dropped,
            "capacity": _STATE.capacity}


def records() -> List[dict]:
    """Snapshot of the buffered records (completion order)."""
    return list(_STATE.buffer)


def drain() -> List[dict]:
    """Return the buffered records and clear the buffer."""
    with _STATE.lock:
        out = list(_STATE.buffer)
        _STATE.buffer.clear()
        return out


def _stack() -> list:
    # Per-thread span stack, reset lazily when a new enable() session
    # starts so a span left open across sessions cannot donate a stale
    # parent id to the new buffer.
    if getattr(_STATE.local, "session", None) != _STATE.session:
        _STATE.local.session = _STATE.session
        _STATE.local.stack = []
    return _STATE.local.stack


def _append(record: dict) -> None:
    buffer = _STATE.buffer
    if buffer.maxlen is not None and len(buffer) >= buffer.maxlen:
        _STATE.dropped += 1
    buffer.append(record)


class _NullSpan:
    """Shared no-op span: what :func:`span` hands out while disabled."""

    __slots__ = ()

    #: Shared scratch dict so ``sp.args[...] = ...`` on call sites that
    #: enrich a span after the fact stays valid (and allocation-free)
    #: when they got the null span instead.  Never read from.
    args: Dict[str, object] = {}

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc) -> bool:
        return False

    def event(self, name: str, **attrs) -> None:
        pass


NULL_SPAN = _NullSpan()


class Span:
    """A live span; use via ``with span(...) as sp``."""

    __slots__ = ("name", "args", "span_id", "parent", "start", "tid")

    def __init__(self, name: str, args: Dict[str, object]) -> None:
        self.name = name
        self.args = args
        self.span_id = next(_STATE.ids)
        self.parent: Optional[int] = None
        self.start = 0
        self.tid = threading.get_ident()

    def __enter__(self) -> "Span":
        stack = _stack()
        self.parent = stack[-1] if stack else None
        stack.append(self.span_id)
        self.start = time.perf_counter_ns()
        return self

    def __exit__(self, *exc) -> bool:
        end = time.perf_counter_ns()
        stack = _stack()
        if stack and stack[-1] == self.span_id:
            stack.pop()
        _append({
            "name": self.name, "ph": "X",
            "ts": self.start - _STATE.t0, "dur": end - self.start,
            "pid": os.getpid(), "tid": self.tid,
            "id": self.span_id, "parent": self.parent,
            "args": self.args,
        })
        return False

    def event(self, name: str, **attrs) -> None:
        """Record an instant event parented to this span."""
        _append({
            "name": name, "ph": "i",
            "ts": time.perf_counter_ns() - _STATE.t0,
            "pid": os.getpid(), "tid": threading.get_ident(),
            "id": next(_STATE.ids), "parent": self.span_id,
            "args": attrs,
        })


def span(name: str, **attrs):
    """A context manager recording one span (no-op while disabled)."""
    if not _STATE.active:
        return NULL_SPAN
    return Span(name, attrs)


def add_event(name: str, **attrs) -> None:
    """Record an instant event parented to the current span (if any)."""
    if not _STATE.active:
        return
    stack = _stack()
    _append({
        "name": name, "ph": "i",
        "ts": time.perf_counter_ns() - _STATE.t0,
        "pid": os.getpid(), "tid": threading.get_ident(),
        "id": next(_STATE.ids), "parent": stack[-1] if stack else None,
        "args": attrs,
    })
