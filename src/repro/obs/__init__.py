"""Unified telemetry: metrics registry, structured tracing, profiling.

The observation layer for the whole stack (simulate → compile → sweep →
serve), with three pillars:

``repro.obs.metrics``
    A thread-safe process-wide registry of counters, gauges and labeled
    histogram series.  Supersedes the ad-hoc ``repro.rtl.instrument``
    counters (which survive as a compat shim over the same registry) and
    feeds the sweep server's Prometheus-style ``GET /metrics`` endpoint.

``repro.obs.tracing``
    Nestable spans (``with obs.span("settle", strategy=...)``) recorded
    into an in-process ring buffer, exportable as NDJSON or
    Perfetto-loadable Chrome trace-event JSON (:mod:`repro.obs.export`).

``repro.obs.profile``
    Opt-in per-settle breakdowns (time per strategy, convergence
    iteration counts, fallback hits) behind the ``--profile`` CLI flags.

Everything is **off by default**, and the disabled paths are guaranteed
allocation-free on the simulator hot loop (``tests/obs/test_overhead.py``
and the ``compiled-obs-off`` benchmark floor in
``benchmarks/check_regression.py`` enforce it).

``python -m repro.obs`` summarizes, converts and validates trace files;
the operator guide is ``docs/observability.md``.
"""

from __future__ import annotations

from . import export, metrics, profile, tracing
from .metrics import REGISTRY, MetricsRegistry, render_prometheus
from .profile import SettleProfiler
from .tracing import add_event, enabled, span

#: Tracing switches re-exported under operator-friendly names.
enable_tracing = tracing.enable
disable_tracing = tracing.disable
tracing_enabled = tracing.enabled

#: Profiling switches.
enable_profiling = profile.enable
disable_profiling = profile.disable
profiler = profile.active

__all__ = [
    "REGISTRY",
    "MetricsRegistry",
    "SettleProfiler",
    "add_event",
    "disable_profiling",
    "disable_tracing",
    "enable_profiling",
    "enable_tracing",
    "enabled",
    "export",
    "metrics",
    "profile",
    "profiler",
    "render_prometheus",
    "span",
    "tracing",
    "tracing_enabled",
]
