"""Test-bench helpers.

Small, reusable drivers for the library's stream and iterator protocols, used
by the unit/integration tests and the benchmarks.  They manipulate interface
signals directly with :meth:`Signal.force` around simulator steps, which is
the intended way for non-synthesisable test benches to talk to a design.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence, Tuple

from .core.interfaces import IteratorIface, StreamSinkIface, StreamSourceIface
from .rtl import SimulationError, Simulator
from .verify.rng import SEED_ENV, stream as seeded_stream


def stream_feed_and_drain(sim: Simulator, fill: StreamSinkIface,
                          drain: StreamSourceIface, data: Sequence[int],
                          expected: Optional[int] = None,
                          max_cycles: int = 100_000) -> List[int]:
    """Push ``data`` into ``fill`` while draining ``drain``; return what came out.

    The feeder honours ``ready`` back-pressure and the drainer accepts an
    element whenever ``valid`` is high.  Stops once ``expected`` elements
    (default: ``len(data)``) have been received.
    """
    if expected is None:
        expected = len(data)
    received: List[int] = []
    index = 0
    for _ in range(max_cycles):
        if index < len(data) and fill.ready.value:
            fill.data.force(data[index])
            fill.push.force(1)
            index += 1
        else:
            fill.push.force(0)
        if drain.valid.value:
            received.append(drain.data.value)
            drain.pop.force(1)
        else:
            drain.pop.force(0)
        sim.step()
        if len(received) >= expected:
            fill.push.force(0)
            drain.pop.force(0)
            return received
    raise SimulationError(
        f"only {len(received)}/{expected} elements received after {max_cycles} cycles")


def stream_feed(sim: Simulator, fill: StreamSinkIface, data: Sequence[int],
                max_cycles: int = 100_000) -> int:
    """Push every element of ``data`` into ``fill``; return the cycles used."""
    index = 0
    start = sim.cycles
    for _ in range(max_cycles):
        if index >= len(data):
            fill.push.force(0)
            return sim.cycles - start
        if fill.ready.value:
            fill.data.force(data[index])
            fill.push.force(1)
            index += 1
        else:
            fill.push.force(0)
        sim.step()
    raise SimulationError(f"could not feed {len(data)} elements in {max_cycles} cycles")


def stream_drain(sim: Simulator, drain: StreamSourceIface, count: int,
                 max_cycles: int = 100_000) -> List[int]:
    """Pop ``count`` elements from ``drain``; return them in arrival order."""
    received: List[int] = []
    for _ in range(max_cycles):
        if drain.valid.value:
            received.append(drain.data.value)
            drain.pop.force(1)
        else:
            drain.pop.force(0)
        sim.step()
        if len(received) >= count:
            drain.pop.force(0)
            return received
    raise SimulationError(
        f"only {len(received)}/{count} elements drained after {max_cycles} cycles")


def iterator_read(sim: Simulator, iface: IteratorIface, advance: bool = True,
                  max_cycles: int = 1_000) -> int:
    """Perform one read (optionally with ``inc``) through the done protocol."""
    for _ in range(max_cycles):
        if iface.can_read.value:
            break
        sim.step()
    else:
        raise SimulationError("iterator never became readable")
    iface.read.force(1)
    if advance:
        iface.inc.force(1)
    for _ in range(max_cycles):
        # Settle first: single-cycle (stream) iterators report ``done``
        # combinationally in the transfer cycle itself.
        sim.settle()
        if iface.done.value:
            value = iface.rdata.value
            sim.step()
            iface.read.force(0)
            iface.inc.force(0)
            sim.step()
            return value
        sim.step()
    raise SimulationError("iterator read did not complete")


def iterator_write(sim: Simulator, iface: IteratorIface, value: int,
                   advance: bool = True, max_cycles: int = 1_000) -> None:
    """Perform one write (optionally with ``inc``) through the done protocol."""
    for _ in range(max_cycles):
        if iface.can_write.value:
            break
        sim.step()
    else:
        raise SimulationError("iterator never became writable")
    iface.wdata.force(value)
    iface.write.force(1)
    if advance:
        iface.inc.force(1)
    for _ in range(max_cycles):
        # Settle first: the ``done`` pulse of single-cycle iterators is only
        # visible in the transfer cycle, before the clock edge retires it.
        sim.settle()
        if iface.done.value:
            sim.step()
            iface.write.force(0)
            iface.inc.force(0)
            sim.step()
            return
        sim.step()
    raise SimulationError("iterator write did not complete")


def iterator_seek(sim: Simulator, iface: IteratorIface, position: int,
                  max_cycles: int = 1_000) -> None:
    """Perform an ``index`` (seek) operation through the done protocol."""
    iface.pos.force(position)
    iface.index.force(1)
    for _ in range(max_cycles):
        sim.step()
        if iface.done.value:
            iface.index.force(0)
            sim.step()
            return
    raise SimulationError("iterator index operation did not complete")


def settle_condition(sim: Simulator, condition: Callable[[], bool],
                     max_cycles: int = 100_000) -> int:
    """Step until ``condition`` holds; return the number of cycles consumed."""
    return sim.run_until(condition, max_cycles)


# ---------------------------------------------------------------------------
# Seeded randomized stimulus (reproducible via one integer)
# ---------------------------------------------------------------------------


def random_stream_schedule(seed: int, cycles: int, data_max: int = 255,
                           push_rate: float = 0.7, pop_rate: float = 0.6,
                           name: str = "testbench") -> List[Tuple[int, int, int]]:
    """A pre-drawn per-cycle ``(push, data, pop)`` stimulus schedule.

    All draws come from named :mod:`repro.verify.rng` streams of ``seed``,
    so the schedule is a pure function of its arguments — the same seed
    replays the identical stimulus under any settle strategy, which is
    exactly what the randomized differential tests need.  Strobes are
    drawn *blind* (they may assert while the DUT is not ready/valid);
    guarded containers must tolerate that by construction.
    """
    push_rng = seeded_stream(seed, f"{name}.push")
    pop_rng = seeded_stream(seed, f"{name}.pop")
    data_rng = seeded_stream(seed, f"{name}.data")
    return [
        (1 if push_rng.random() < push_rate else 0,
         data_rng.randint(0, data_max),
         1 if pop_rng.random() < pop_rate else 0)
        for _ in range(cycles)
    ]


def randomized_feed_and_drain(sim: Simulator, fill: StreamSinkIface,
                              drain: StreamSourceIface, seed: int,
                              cycles: int, data_max: int = 255,
                              push_rate: float = 0.7, pop_rate: float = 0.6,
                              name: str = "testbench"
                              ) -> Tuple[List[int], List[int]]:
    """Drive a seeded random schedule through a stream container.

    Returns ``(accepted_inputs, received_outputs)``.  Any
    :class:`SimulationError` raised mid-run is re-raised with the
    reproducing ``REPRO_SEED`` assignment appended, so a failing
    randomized test always prints the one integer needed to replay it.
    """
    schedule = random_stream_schedule(seed, cycles, data_max=data_max,
                                      push_rate=push_rate, pop_rate=pop_rate,
                                      name=name)
    sent: List[int] = []
    received: List[int] = []
    try:
        for push, data, pop in schedule:
            fill.data.force(data)
            fill.push.force(push)
            drain.pop.force(pop)
            sim.settle()
            if push and fill.ready.value:
                sent.append(data)
            if pop and drain.valid.value:
                received.append(drain.data.value)
            sim.step()
        fill.push.force(0)
        drain.pop.force(0)
    except SimulationError as error:
        raise SimulationError(
            f"{error} (reproduce with {SEED_ENV}={seed})") from error
    return sent, received
