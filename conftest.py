"""Repo-root pytest configuration: the ``--quick`` benchmark smoke flag.

The flag lives here (not in ``benchmarks/conftest.py``) because pytest only
registers options from *initial* conftests — a bare ``pytest --quick`` from
the repo root would otherwise be rejected.  It is translated into the
``REPRO_BENCH_QUICK`` environment variable at configure time, before
benchmark modules (whose sizing constants are module-level) are imported;
see ``benchmarks/bench_profile.py``.
"""

import os


def pytest_addoption(parser):
    parser.addoption(
        "--quick", action="store_true", default=False,
        help="run the benchmarks in quick smoke mode (small frames/sweeps)")


def pytest_configure(config):
    if config.getoption("--quick"):
        os.environ["REPRO_BENCH_QUICK"] = "1"
