#!/usr/bin/env python
"""Enforce performance floors on a benchmark JSON artifact.

CI runs the benchmark suite with ``REPRO_BENCH_JSON=<path>`` (which makes
``benchmarks/conftest.py`` write the metric registry at session end), uploads
the file as a ``BENCH_*.json`` artifact, and then runs::

    python benchmarks/check_regression.py <path>

The floors here mirror the assertions inside ``test_throughput.py`` — the
point of duplicating them is that the artifact, not just the test run, is
the unit of record: a future change to how benchmarks execute cannot
silently drop a guard without also touching this file.

``--baseline PREV_BENCH.json`` additionally compares every shared
``cycles_per_second`` measurement against a previous artifact and prints
per-metric deltas — informational (the hard gate stays the floors; run-to-
run noise on shared CI hardware would make deltas an unreliable gate), but
it turns the BENCH_* artifact trail into a readable trajectory.
``--summary PATH`` appends the comparison as GitHub-flavoured markdown
(CI points it at ``$GITHUB_STEP_SUMMARY``).

Exit status: 0 when every guarded ratio holds, 1 otherwise (or when an
expected measurement is missing from the artifact).
"""

from __future__ import annotations

import argparse
import json
import sys

#: (design, fast strategy, slow strategy, floor).  Ratios are recomputed
#: from the raw cycles/sec numbers so a corrupted "speedup" section cannot
#: mask a regression.
FLOORS = [
    ("saa2vga_fifo", "event", "fixpoint", 2.0),
    ("saa2vga_fifo", "compiled", "fixpoint", 2.0),
    ("saa2vga_fifo", "compiled", "event", 1.2),
    ("blur_pattern", "compiled", "fixpoint", 1.5),
    # Telemetry (repro.obs): compiled throughput measured after a tracing/
    # profiling enable+disable cycle must stay within 3% of the plain
    # compiled floor (2.0 * 0.97) — the disabled dispatch check is the
    # entire cost (mirrors test_disabled_telemetry_keeps_compiled_throughput).
    ("saa2vga_fifo", "compiled-obs-off", "fixpoint", 1.94),
    # Elaborated pipeline graph (repro.flow): the many small bridge
    # processes of the graph shell must keep dissolving into the compiled
    # settle function (mirrors test_pipeline_compiled_speedup_over_fixpoint).
    ("pipeline_dualpath", "compiled", "fixpoint", 1.5),
    # Batched lockstep backend: one 16-lane vectorized session over the
    # equal-area saa2vga sweep grid must beat sixteen scalar compiled
    # sessions (lane-cycles/s on both sides; mirrors
    # test_batched_sweep_speedup_over_scalar_compiled).
    ("saa2vga_sweep16", "compiled-batched", "compiled", 3.0),
]


def check(payload: dict) -> list:
    """Return a list of human-readable failures (empty when all floors hold)."""
    failures = []
    cps = payload.get("cycles_per_second", {})
    for design, fast, slow, floor in FLOORS:
        measurements = cps.get(design, {})
        fast_cps = measurements.get(fast)
        slow_cps = measurements.get(slow)
        if not fast_cps or not slow_cps:
            failures.append(
                f"{design}: missing cycles_per_second for "
                f"{fast!r} and/or {slow!r}")
            continue
        ratio = fast_cps / slow_cps
        status = "ok" if ratio >= floor else "REGRESSION"
        print(f"{design}: {fast} {fast_cps:,.0f} c/s vs {slow} "
              f"{slow_cps:,.0f} c/s -> {ratio:.2f}x (floor {floor}x) {status}")
        if ratio < floor:
            failures.append(
                f"{design}: {fast} is only {ratio:.2f}x {slow}, "
                f"floor is {floor}x")
    return failures


def compare(payload: dict, baseline: dict) -> list:
    """Per-metric delta rows between two artifacts' ``cycles_per_second``.

    Returns ``(design, strategy, baseline_cps, current_cps, delta_pct)``
    tuples for every measurement present in both artifacts, sorted so the
    output (and the markdown summary built from it) is deterministic.
    """
    rows = []
    current = payload.get("cycles_per_second", {})
    previous = baseline.get("cycles_per_second", {})
    for design in sorted(set(current) & set(previous)):
        for strategy in sorted(set(current[design]) & set(previous[design])):
            now = current[design][strategy]
            then = previous[design][strategy]
            if not now or not then:
                continue
            rows.append((design, strategy, then, now,
                         (now - then) / then * 100.0))
    return rows


def comparison_lines(rows: list, markdown: bool = False) -> list:
    """Render :func:`compare` rows as plain text or a markdown table."""
    if not rows:
        return ["no overlapping cycles_per_second measurements to compare"]
    if markdown:
        lines = ["| design | strategy | baseline c/s | current c/s | delta |",
                 "|---|---|---:|---:|---:|"]
        for design, strategy, then, now, delta in rows:
            lines.append(f"| {design} | {strategy} | {then:,.0f} | "
                         f"{now:,.0f} | {delta:+.1f}% |")
        return lines
    return [f"{design}: {strategy} {then:,.0f} -> {now:,.0f} c/s "
            f"({delta:+.1f}%)"
            for design, strategy, then, now, delta in rows]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        description="Enforce performance floors on a benchmark artifact; "
                    "optionally diff it against a previous one.")
    parser.add_argument("bench", help="benchmark JSON artifact to check")
    parser.add_argument("--baseline", default=None, metavar="PREV_BENCH.json",
                        help="previous artifact to report per-metric deltas "
                             "against (informational; floors still gate)")
    parser.add_argument("--summary", default=None, metavar="PATH",
                        help="append the baseline comparison as a markdown "
                             "table to this file (CI: $GITHUB_STEP_SUMMARY)")
    return parser


def main(argv: list) -> int:
    args = build_parser().parse_args(argv[1:])
    with open(args.bench, "r", encoding="utf-8") as handle:
        payload = json.load(handle)
    print(f"benchmark profile: {payload.get('profile', 'unknown')}")
    failures = check(payload)
    if args.baseline is not None:
        try:
            with open(args.baseline, "r", encoding="utf-8") as handle:
                baseline = json.load(handle)
        except (OSError, ValueError) as exc:
            print(f"\nbaseline {args.baseline} unreadable ({exc}) — "
                  "skipping comparison")
            baseline = None
        if baseline is not None:
            rows = compare(payload, baseline)
            print(f"\ndeltas vs baseline "
                  f"(profile {baseline.get('profile', 'unknown')}):")
            for line in comparison_lines(rows):
                print(f"  {line}")
            if args.summary:
                with open(args.summary, "a", encoding="utf-8") as handle:
                    handle.write("### Benchmark deltas vs previous run\n\n")
                    for line in comparison_lines(rows, markdown=True):
                        handle.write(line + "\n")
                    handle.write("\n")
    if failures:
        print("\nperformance floors violated:", file=sys.stderr)
        for failure in failures:
            print(f"  - {failure}", file=sys.stderr)
        return 1
    print("all performance floors hold")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
