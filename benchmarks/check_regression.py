#!/usr/bin/env python
"""Enforce performance floors on a benchmark JSON artifact.

CI runs the benchmark suite with ``REPRO_BENCH_JSON=<path>`` (which makes
``benchmarks/conftest.py`` write the metric registry at session end), uploads
the file as a ``BENCH_*.json`` artifact, and then runs::

    python benchmarks/check_regression.py <path>

The floors here mirror the assertions inside ``test_throughput.py`` — the
point of duplicating them is that the artifact, not just the test run, is
the unit of record: a future change to how benchmarks execute cannot
silently drop a guard without also touching this file.

Exit status: 0 when every guarded ratio holds, 1 otherwise (or when an
expected measurement is missing from the artifact).
"""

from __future__ import annotations

import json
import sys

#: (design, fast strategy, slow strategy, floor).  Ratios are recomputed
#: from the raw cycles/sec numbers so a corrupted "speedup" section cannot
#: mask a regression.
FLOORS = [
    ("saa2vga_fifo", "event", "fixpoint", 2.0),
    ("saa2vga_fifo", "compiled", "fixpoint", 2.0),
    ("saa2vga_fifo", "compiled", "event", 1.2),
    ("blur_pattern", "compiled", "fixpoint", 1.5),
    # Telemetry (repro.obs): compiled throughput measured after a tracing/
    # profiling enable+disable cycle must stay within 3% of the plain
    # compiled floor (2.0 * 0.97) — the disabled dispatch check is the
    # entire cost (mirrors test_disabled_telemetry_keeps_compiled_throughput).
    ("saa2vga_fifo", "compiled-obs-off", "fixpoint", 1.94),
    # Elaborated pipeline graph (repro.flow): the many small bridge
    # processes of the graph shell must keep dissolving into the compiled
    # settle function (mirrors test_pipeline_compiled_speedup_over_fixpoint).
    ("pipeline_dualpath", "compiled", "fixpoint", 1.5),
    # Batched lockstep backend: one 16-lane vectorized session over the
    # equal-area saa2vga sweep grid must beat sixteen scalar compiled
    # sessions (lane-cycles/s on both sides; mirrors
    # test_batched_sweep_speedup_over_scalar_compiled).
    ("saa2vga_sweep16", "compiled-batched", "compiled", 3.0),
]


def check(payload: dict) -> list:
    """Return a list of human-readable failures (empty when all floors hold)."""
    failures = []
    cps = payload.get("cycles_per_second", {})
    for design, fast, slow, floor in FLOORS:
        measurements = cps.get(design, {})
        fast_cps = measurements.get(fast)
        slow_cps = measurements.get(slow)
        if not fast_cps or not slow_cps:
            failures.append(
                f"{design}: missing cycles_per_second for "
                f"{fast!r} and/or {slow!r}")
            continue
        ratio = fast_cps / slow_cps
        status = "ok" if ratio >= floor else "REGRESSION"
        print(f"{design}: {fast} {fast_cps:,.0f} c/s vs {slow} "
              f"{slow_cps:,.0f} c/s -> {ratio:.2f}x (floor {floor}x) {status}")
        if ratio < floor:
            failures.append(
                f"{design}: {fast} is only {ratio:.2f}x {slow}, "
                f"floor is {floor}x")
    return failures


def main(argv: list) -> int:
    if len(argv) != 2:
        print(f"usage: {argv[0]} <bench.json>", file=sys.stderr)
        return 1
    with open(argv[1], "r", encoding="utf-8") as handle:
        payload = json.load(handle)
    print(f"benchmark profile: {payload.get('profile', 'unknown')}")
    failures = check(payload)
    if failures:
        print("\nperformance floors violated:", file=sys.stderr)
        for failure in failures:
            print(f"  - {failure}", file=sys.stderr)
        return 1
    print("all performance floors hold")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
