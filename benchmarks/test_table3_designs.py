"""E3/E4/E5/E10 — Reproduce Table 3: "Design experiments".

For each of the paper's three designs (``saa2vga 1`` = stream copy over FIFOs,
``saa2vga 2`` = stream copy over external SRAMs, ``blur`` = 3x3 filter over a
3-line buffer) the bench:

1. builds the pattern-based and the hand-written (custom) implementation;
2. verifies both against the golden model on a video frame (functional
   equivalence is a precondition of the resource comparison);
3. estimates FFs / LUTs / block RAMs / clock for both and prints the row in
   the paper's ``pattern/custom`` format;
4. asserts the headline claim: the pattern-based implementation has no
   block-RAM overhead, no clock penalty, and at most a few percent more
   flip-flops/LUTs ("a negligible overhead for the pattern-based
   implementation").

Absolute values differ from the paper (the estimator is a structural model,
not Xilinx ISE), but the *shape* — equality between pattern and custom, FIFO
vs SRAM block-RAM and clock trade-off — is the reproduction target.  See
EXPERIMENTS.md for the paper-vs-measured table.
"""

import pytest

from bench_profile import stimulus_seed
from repro.designs import (
    BlurCustomDesign,
    Saa2VgaCustomFIFO,
    Saa2VgaCustomSRAM,
    build_blur_pattern,
    build_saa2vga_pattern,
    run_stream_through,
)
from repro.synth import DesignComparison, estimate_design, overhead_summary, table3
from repro.video import flatten, golden_blur3x3, random_frame

#: Table 3 of the paper (pattern/custom): FFs, LUTs, block RAM, clk MHz.
PAPER_TABLE3 = {
    "saa2vga 1": ((147, 147), (169, 168), (2, 2), (98, 98)),
    "saa2vga 2": ((69, 69), (127, 127), (0, 0), (96, 96)),
    "blur": ((3145, 3145), (4170, 4169), (2, 2), (98, 98)),
}

# Synthesis-sized instances (buffer capacity / line width as in a QVGA system).
# These are never shrunk in quick mode: the Table 3 assertions compare against
# the paper's absolute block-RAM counts for QVGA-sized buffers.
SYNTH_CAPACITY = 512
SYNTH_LINE_WIDTH = 320

# Simulation-sized instances (small frames keep the bench fast).
SIM_FRAME = random_frame(16, 10, seed=stimulus_seed(100))
SIM_PIXELS = flatten(SIM_FRAME)
SIM_BLUR_GOLDEN = flatten(golden_blur3x3(SIM_FRAME))


def build_row(label):
    """Return (pattern_design, custom_design) at synthesis size for one row."""
    if label == "saa2vga 1":
        return (build_saa2vga_pattern("fifo", capacity=SYNTH_CAPACITY),
                Saa2VgaCustomFIFO(capacity=SYNTH_CAPACITY))
    if label == "saa2vga 2":
        return (build_saa2vga_pattern("sram", capacity=SYNTH_CAPACITY),
                Saa2VgaCustomSRAM(capacity=SYNTH_CAPACITY))
    if label == "blur":
        return (build_blur_pattern(line_width=SYNTH_LINE_WIDTH, out_capacity=64),
                BlurCustomDesign(line_width=SYNTH_LINE_WIDTH, out_capacity=64))
    raise KeyError(label)


def build_sim_row(label):
    """Return (pattern, custom, expected_output) at simulation size."""
    if label == "saa2vga 1":
        return (build_saa2vga_pattern("fifo", capacity=16),
                Saa2VgaCustomFIFO(capacity=16), SIM_PIXELS)
    if label == "saa2vga 2":
        return (build_saa2vga_pattern("sram", capacity=16),
                Saa2VgaCustomSRAM(capacity=16), SIM_PIXELS)
    if label == "blur":
        return (build_blur_pattern(line_width=16, out_capacity=32),
                BlurCustomDesign(line_width=16, out_capacity=32), SIM_BLUR_GOLDEN)
    raise KeyError(label)


def compare_row(label):
    pattern, custom = build_row(label)
    return DesignComparison(label, estimate_design(pattern), estimate_design(custom))


@pytest.mark.parametrize("label", list(PAPER_TABLE3))
def test_table3_row(label, benchmark):
    # Functional equivalence first: pattern and custom produce the same stream.
    pattern_sim, custom_sim, expected = build_sim_row(label)
    pattern_result = run_stream_through(pattern_sim, SIM_FRAME,
                                        expected_outputs=len(expected))
    custom_result = run_stream_through(custom_sim, SIM_FRAME,
                                       expected_outputs=len(expected))
    assert pattern_result["pixels"] == expected
    assert custom_result["pixels"] == expected

    # Resource estimation (benchmarked).
    comparison = benchmark(compare_row, label)
    cells = comparison.cells()
    paper_ffs, paper_luts, paper_bram, paper_clk = PAPER_TABLE3[label]
    print()
    print(f"{label}:  measured  FFs {cells['FFs']}, LUTs {cells['LUTs']}, "
          f"blockRAM {cells['blockRAM']}, clk {cells['clk MHz']} MHz")
    print(f"{label}:  paper     FFs {paper_ffs[0]}/{paper_ffs[1]}, "
          f"LUTs {paper_luts[0]}/{paper_luts[1]}, "
          f"blockRAM {paper_bram[0]}/{paper_bram[1]}, "
          f"clk {paper_clk[0]}/{paper_clk[1]} MHz")

    overhead = comparison.overhead()
    # Shape assertions (the paper's claims, not its absolute numbers):
    # block RAM count matches the paper exactly and is identical pattern/custom.
    assert comparison.pattern.total.brams == paper_bram[0]
    assert comparison.custom.total.brams == paper_bram[1]
    assert overhead["blockRAM"] == 1.0
    # No clock penalty for the pattern version.
    assert comparison.pattern.fmax_mhz >= comparison.custom.fmax_mhz
    # Negligible logic overhead (<= 20% even in the worst, SRAM, case; ~1%
    # for the FIFO and blur rows).
    assert overhead["FFs"] <= 1.20
    assert overhead["LUTs"] <= 1.20
    if label != "saa2vga 2":
        assert overhead["FFs"] <= 1.05
        assert overhead["LUTs"] <= 1.05


def test_table3_full_table_and_overhead_summary(benchmark):
    def build_all():
        return [compare_row(label) for label in PAPER_TABLE3]

    comparisons = benchmark.pedantic(build_all, rounds=1, iterations=1)
    print()
    print(table3(comparisons))
    worst = overhead_summary(comparisons)
    print(f"worst-case pattern/custom overhead: "
          f"FFs x{worst['FFs']:.3f}, LUTs x{worst['LUTs']:.3f}, "
          f"blockRAM x{worst['blockRAM']:.3f}, clk x{worst['clk_MHz']:.3f}")
    # E10: the headline claim, aggregated over every design.
    assert worst["blockRAM"] == 1.0
    assert worst["clk_MHz"] == 1.0
    assert worst["FFs"] <= 1.20
    assert worst["LUTs"] <= 1.20


def test_table3_row_ordering_matches_paper_trends(benchmark):
    """Cross-row shape: FIFO binding uses block RAM and the highest clock;
    the SRAM binding uses none and the lowest clock; blur is the largest design."""
    comparisons = {label: compare_row(label) for label in PAPER_TABLE3}
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    saa1 = comparisons["saa2vga 1"].pattern
    saa2 = comparisons["saa2vga 2"].pattern
    blur = comparisons["blur"].pattern
    assert saa1.total.brams == 2 and blur.total.brams == 2
    assert saa2.total.brams == 0
    assert saa2.fmax_mhz < saa1.fmax_mhz
    assert blur.total.total_luts > saa1.total.total_luts
    assert blur.total.ffs > saa1.total.ffs
