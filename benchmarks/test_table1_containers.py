"""E1 — Reproduce Table 1: "Common containers".

Regenerates the container classification table (access kind x traversal
direction) from the live registry of the library and checks it cell-by-cell
against the paper.  The benchmark times registry introspection plus one
instantiation of every (kind, binding) pair — the cost of "selecting the
proper implementation of a container" late, which the paper's methodology
relies on being cheap.
"""

from repro.core import (
    CONTAINER_KINDS,
    bindings_for,
    classification_table,
    container_kinds,
    make_container,
)
from repro.synth import format_table

#: Table 1 of the paper, verbatim (container, random in/out, sequential in/out).
PAPER_TABLE1 = {
    "stack": ("-", "-", "F", "B"),
    "queue": ("-", "-", "F", "F"),
    "read buffer": ("-", "-", "F", "-"),
    "write buffer": ("-", "-", "-", "F"),
    "vector": ("yes", "yes", "F, B", "F, B"),
    "assoc array": ("yes", "yes", "-", "-"),
}

CONSTRUCTOR_PARAMS = {
    ("read_buffer", "linebuffer3"): {"width": 8, "line_width": 64},
    ("assoc_array", "cam"): {"key_width": 8, "value_width": 8, "capacity": 8},
}


def instantiate_every_binding():
    """Build one instance of every registered (kind, binding) pair."""
    instances = []
    for kind in container_kinds():
        for binding in bindings_for(kind):
            params = CONSTRUCTOR_PARAMS.get((kind, binding),
                                            {"width": 8, "capacity": 64})
            instances.append(make_container(kind, binding,
                                            f"{kind}_{binding}", **params))
    return instances


def test_table1_reproduction(benchmark):
    rows = benchmark(classification_table)
    print()
    print(format_table(rows, title="Table 1. Common containers (reproduced)."))

    assert len(rows) == len(PAPER_TABLE1)
    for row in rows:
        expected = PAPER_TABLE1[row["container"]]
        actual = (row["random_input"], row["random_output"],
                  row["seq_input"], row["seq_output"])
        assert actual == expected, f"{row['container']}: {actual} != {expected}"


def test_table1_every_binding_instantiates(benchmark):
    instances = benchmark(instantiate_every_binding)
    # Every abstract kind has at least one physical binding, and the factory
    # returns components of the advertised kind.
    kinds_covered = {type(instance).kind for instance in instances}
    assert kinds_covered == set(CONTAINER_KINDS)
    assert len(instances) >= 12
    print(f"\ninstantiated {len(instances)} concrete container bindings: "
          + ", ".join(sorted(f"{i.kind}/{i.binding}" for i in instances)))
