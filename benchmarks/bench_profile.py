"""Benchmark sizing profile: full (default) or quick smoke mode.

Quick mode shrinks frames, capacities and sweep ranges so the whole
``benchmarks/`` directory runs in seconds — suitable for CI smoke coverage
on every push, while the full profile stays the reproduction-grade default.

Activate quick mode either way:

* ``pytest benchmarks --quick``
* ``REPRO_BENCH_QUICK=1 pytest benchmarks``

(The ``--quick`` flag, defined in ``benchmarks/conftest.py``, simply sets
the environment variable before test modules are imported, so module-level
sizing constants see it.)
"""

from __future__ import annotations

import os

ENV_VAR = "REPRO_BENCH_QUICK"


def quick_mode() -> bool:
    """True when the smoke profile is active."""
    return os.environ.get(ENV_VAR, "").strip() not in ("", "0", "false", "no")


def scaled(full, quick):
    """Pick the full- or quick-profile value for a sizing constant."""
    return quick if quick_mode() else full


def stimulus_seed(base: int) -> int:
    """Frame seed for a benchmark: the fixed base offset by ``$REPRO_SEED``.

    Benchmark frames come from :func:`repro.video.random_frame`, whose
    pixels are a pure function of this seed via the named streams of
    :mod:`repro.verify.rng` — so any failure is replayed exactly by
    exporting the root seed the report header printed.  The default root
    seed of 0 keeps the historical stimulus.
    """
    from repro.verify.rng import default_seed

    return base + default_seed()


# -- benchmark metric registry ----------------------------------------------------
#
# Benchmarks record headline numbers (cycles simulated per wall-clock second,
# per design per strategy) here; when the ``REPRO_BENCH_JSON`` environment
# variable names a path, ``benchmarks/conftest.py`` writes the registry to it
# at session end.  CI uploads that file as a ``BENCH_*.json`` artifact and
# ``benchmarks/check_regression.py`` enforces the guarded floors on it.

JSON_ENV_VAR = "REPRO_BENCH_JSON"

_metrics: dict = {}


def record_metric(category: str, design: str, name: str, value) -> None:
    """Record one benchmark measurement (e.g. cycles/sec for a strategy)."""
    _metrics.setdefault(category, {}).setdefault(design, {})[name] = value


def metrics() -> dict:
    """A snapshot of everything recorded so far."""
    return {category: {design: dict(values)
                       for design, values in designs.items()}
            for category, designs in _metrics.items()}


def metrics_path():
    """Where to write the JSON artifact, or None when not requested."""
    path = os.environ.get(JSON_ENV_VAR, "").strip()
    return path or None


def write_metrics(path: str) -> dict:
    """Serialise the registry (plus profile metadata) to ``path``."""
    import json

    payload = {
        "profile": "quick" if quick_mode() else "full",
        **metrics(),
    }
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return payload
