"""Benchmark sizing profile: full (default) or quick smoke mode.

Quick mode shrinks frames, capacities and sweep ranges so the whole
``benchmarks/`` directory runs in seconds — suitable for CI smoke coverage
on every push, while the full profile stays the reproduction-grade default.

Activate quick mode either way:

* ``pytest benchmarks --quick``
* ``REPRO_BENCH_QUICK=1 pytest benchmarks``

(The ``--quick`` flag, defined in ``benchmarks/conftest.py``, simply sets
the environment variable before test modules are imported, so module-level
sizing constants see it.)
"""

from __future__ import annotations

import os

ENV_VAR = "REPRO_BENCH_QUICK"


def quick_mode() -> bool:
    """True when the smoke profile is active."""
    return os.environ.get(ENV_VAR, "").strip() not in ("", "0", "false", "no")


def scaled(full, quick):
    """Pick the full- or quick-profile value for a sizing constant."""
    return quick if quick_mode() else full
