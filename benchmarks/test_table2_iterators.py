"""E2 — Reproduce Table 2: "Iterator Operations".

Prints the operation table (operation, meaning, applicability) verbatim from
the library's descriptors and cross-checks every registered concrete iterator
against it: an iterator may only implement operations whose applicability
covers its traversal class, and every operation is implemented by at least
one iterator.
"""

from repro.core import (
    ITERATOR_OPERATIONS,
    ITERATOR_REGISTRY,
    IteratorOp,
    iterator_catalog,
)
from repro.synth import format_table

#: Table 2 of the paper, verbatim.
PAPER_TABLE2 = {
    "inc": ("move forward", "F / F, B"),
    "dec": ("move backwards", "B / F, B"),
    "read": ("get the element", "random / F, B"),
    "write": ("put the element", "random / F, B"),
    "index": ("set the current position", "random"),
}


def build_table2_rows():
    return [{"Operation": d.op.value, "Meaning": d.meaning,
             "Applicability": d.applicability} for d in ITERATOR_OPERATIONS]


def test_table2_reproduction(benchmark):
    rows = benchmark(build_table2_rows)
    print()
    print(format_table(rows, title="Table 2. Iterator Operations (reproduced)."))
    assert len(rows) == len(PAPER_TABLE2)
    for row in rows:
        meaning, applicability = PAPER_TABLE2[row["Operation"]]
        assert row["Meaning"] == meaning
        assert row["Applicability"] == applicability


def test_table2_consistency_with_registered_iterators(benchmark):
    catalog = benchmark(iterator_catalog)
    print()
    print(format_table(catalog, title="Registered concrete iterators."))

    # Rule checks derived from Table 2.
    implemented_ops = set()
    for key, cls in ITERATOR_REGISTRY.items():
        ops = cls.supported_ops()
        implemented_ops |= ops
        traversal = cls.traversal
        if IteratorOp.INDEX in ops:
            assert traversal == "random", f"{cls.__name__}: index is random-only"
        if traversal == "forward":
            assert IteratorOp.DEC not in ops, f"{cls.__name__}: forward has no dec"
        if traversal == "backward":
            assert IteratorOp.INC not in ops, f"{cls.__name__}: backward has no inc"
        assert (IteratorOp.READ in ops) == cls.readable
        assert (IteratorOp.WRITE in ops) == cls.writable

    # Every Table 2 operation is realised by at least one concrete iterator.
    assert implemented_ops == {IteratorOp.INC, IteratorOp.DEC, IteratorOp.READ,
                               IteratorOp.WRITE, IteratorOp.INDEX}
