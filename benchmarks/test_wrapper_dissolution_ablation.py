"""Ablation — wrapper dissolution (the basis of the "negligible overhead" claim).

The paper attributes the lack of overhead to the fact that iterators and
container glue "are only wrappers that will be dissolved at the time of
synthesizing the design".  This bench quantifies that mechanism by running
the resource estimator twice over every pattern-based design: once with
dissolution (real synthesis behaviour) and once charging every wrapper as if
it were kept as logic.  Without dissolution the pattern-based designs *would*
cost more than the custom ones — confirming that the paper's claim rests on
this property, and that the estimator models it explicitly rather than by
accident.
"""

from repro.designs import (
    BlurCustomDesign,
    Saa2VgaCustomFIFO,
    Saa2VgaCustomSRAM,
    build_blur_pattern,
    build_saa2vga_pattern,
)
from repro.synth import ResourceEstimator, format_table

DESIGNS = {
    "saa2vga 1": (lambda: build_saa2vga_pattern("fifo", capacity=512),
                  lambda: Saa2VgaCustomFIFO(capacity=512)),
    "saa2vga 2": (lambda: build_saa2vga_pattern("sram", capacity=512),
                  lambda: Saa2VgaCustomSRAM(capacity=512)),
    "blur": (lambda: build_blur_pattern(line_width=320, out_capacity=64),
             lambda: BlurCustomDesign(line_width=320, out_capacity=64)),
}


def run_ablation():
    dissolving = ResourceEstimator(dissolve_wrappers=True)
    keeping = ResourceEstimator(dissolve_wrappers=False)
    rows = []
    for label, (make_pattern, make_custom) in DESIGNS.items():
        pattern = make_pattern()
        custom = make_custom()
        with_dissolution = dissolving.estimate(pattern)
        without_dissolution = keeping.estimate(pattern)
        custom_report = dissolving.estimate(custom)
        rows.append({
            "design": label,
            "pattern LUTs (dissolved)": with_dissolution.total.total_luts,
            "pattern LUTs (kept)": without_dissolution.total.total_luts,
            "custom LUTs": custom_report.total.total_luts,
            "wrapper LUTs saved": (without_dissolution.total.total_luts
                                   - with_dissolution.total.total_luts),
        })
    return rows


def test_wrapper_dissolution_ablation(benchmark):
    rows = benchmark(run_ablation)
    print()
    print(format_table(rows, title="Ablation: wrapper dissolution "
                                   "(pattern-based designs)."))
    for row in rows:
        dissolved = row["pattern LUTs (dissolved)"]
        kept = row["pattern LUTs (kept)"]
        custom = row["custom LUTs"]
        # Dissolution removes a real, non-zero amount of wrapper glue.
        assert kept > dissolved
        assert row["wrapper LUTs saved"] > 0
        # With dissolution the pattern design is within 20% of the custom one
        # (within ~1% for the FIFO and blur rows, see the Table 3 bench)...
        assert dissolved <= custom * 1.20
        # ... whereas charging the wrappers would visibly inflate it.
        assert kept > custom


def test_dissolution_only_affects_wrappers(benchmark):
    """Custom designs contain no wrappers, so the flag must not change them."""
    def run():
        dissolving = ResourceEstimator(dissolve_wrappers=True)
        keeping = ResourceEstimator(dissolve_wrappers=False)
        results = []
        for _label, (_make_pattern, make_custom) in DESIGNS.items():
            custom = make_custom()
            results.append((dissolving.estimate(custom).total.total_luts,
                            keeping.estimate(make_custom()).total.total_luts))
        return results

    for dissolved_luts, kept_luts in benchmark(run):
        assert dissolved_luts == kept_luts
