"""E7 — Reproduce Figures 4 and 5: the generated ``rbuffer_fifo`` and
``rbuffer_sram`` entities.

The code generator is asked for the read-buffer container over the FIFO and
the SRAM bindings with the same functional interface the paper shows
(``m_empty``, ``m_size``, ``m_pop``, ``data``, ``done``); the bench prints
both entities and checks that the implementation interfaces differ exactly as
Figure 5 describes ("includes only the differences (the implementation
interface) with respect to the first").
"""

from repro.metagen import (
    CodeGenerator,
    GenerationConfig,
    check_balanced,
    figure4_rbuffer_fifo,
    figure5_rbuffer_sram,
)

FIG4_FUNCTIONAL_PORTS = {"m_empty", "m_size", "m_pop", "data", "done"}
FIG4_IMPLEMENTATION_PORTS = {"p_empty", "p_read", "p_data"}
FIG5_IMPLEMENTATION_PORTS = {"p_addr", "p_data", "req", "ack"}


def generate_both():
    return figure4_rbuffer_fifo(), figure5_rbuffer_sram()


def test_figures_4_and_5(benchmark):
    fifo, sram = benchmark(generate_both)
    print()
    print("--- Figure 4 (reproduced): rbuffer over a FIFO device ---")
    print(fifo.emit())
    print("--- Figure 5 (reproduced): rbuffer over an SRAM device ---")
    print(sram.emit())

    fifo_ports = set(fifo.vhdl.entity.port_names())
    sram_ports = set(sram.vhdl.entity.port_names())
    # The functional interface is identical in both figures.
    assert FIG4_FUNCTIONAL_PORTS <= fifo_ports
    assert FIG4_FUNCTIONAL_PORTS <= sram_ports
    # The implementation interfaces are binding-specific.
    assert FIG4_IMPLEMENTATION_PORTS <= fifo_ports
    assert FIG5_IMPLEMENTATION_PORTS <= sram_ports
    assert not (FIG4_IMPLEMENTATION_PORTS & sram_ports) - {"p_data"}
    # The *only* differences between the entities are implementation ports.
    assert (fifo_ports - sram_ports) <= FIG4_IMPLEMENTATION_PORTS
    assert (sram_ports - fifo_ports) <= FIG5_IMPLEMENTATION_PORTS
    # Data path width of the paper's example: 8-bit pixels, 16-bit SRAM address.
    assert "std_logic_vector(7 downto 0)" in fifo.emit()
    assert "p_addr : out std_logic_vector(15 downto 0)" in sram.emit()
    assert check_balanced(fifo.emit())
    assert check_balanced(sram.emit())


def test_operation_pruning_shrinks_the_entity(benchmark):
    """'Including only those resources that are really used by the selected
    operations': a pop-only read buffer has fewer ports and no dead logic."""
    generator = CodeGenerator()

    def generate_minimal():
        return generator.generate_container("read_buffer", GenerationConfig(
            name="rbuffer_minimal", binding="fifo",
            used_operations=frozenset({"pop"})))

    minimal = benchmark(generate_minimal)
    full = figure4_rbuffer_fifo()
    minimal_ports = set(minimal.vhdl.entity.port_names())
    full_ports = set(full.vhdl.entity.port_names())
    print(f"\nfull rbuffer_fifo ports: {len(full_ports)}; "
          f"pruned (pop-only) ports: {len(minimal_ports)}")
    assert minimal_ports < full_ports
    assert "m_empty" not in minimal_ports
    assert "m_size" not in minimal_ports
    assert len(minimal.emit()) < len(full.emit())


def test_generated_library_for_both_saa2vga_bindings(benchmark):
    """Generating the whole container/iterator set of the example designs."""
    generator = CodeGenerator()

    def generate_all():
        units = []
        units += generator.generate_design_library("saa2vga1", binding="fifo",
                                                    depth=512)
        units += generator.generate_design_library("saa2vga2", binding="sram",
                                                    depth=512)
        return units

    units = benchmark(generate_all)
    assert len(units) == 8
    total_lines = sum(unit.emit().count("\n") for unit in units)
    print(f"\ngenerated {len(units)} VHDL design units, {total_lines} lines total")
    for unit in units:
        assert check_balanced(unit.emit()), unit.name
