"""E8 — Pixel-format change scenarios of Section 3.3.

"It would also be possible to modify the pixel data representation (from
8-bit grayscale to 24-bit RGB, for example).  Here two different alternatives
arise depending on the RAM data bus size: 1) For a 24-bit data bus, we should
only regenerate the implementations of the elements using the 24-bit data
pixel as the base type.  2) For an 8-bit data bus, we should also modify the
iterator code to perform three consecutive container reads/writes to get/set
the whole pixel."

The bench runs both alternatives in simulation (bit-exact output required),
measures the throughput cost of the narrow-bus alternative, and checks the
code generator's width-adaptation plan (3 beats per pixel, beat counter in
the generated VHDL).
"""

from bench_profile import stimulus_seed
from repro.core import CopyAlgorithm, make_container, make_iterator
from repro.metagen import (
    CodeGenerator,
    GenerationConfig,
    WidthDownConverter,
    WidthUpConverter,
)
from repro.rtl import Component, Simulator
from repro.testing import stream_feed_and_drain
from repro.video import RGB24, flatten, gray_to_rgb24, random_frame

GRAY_FRAME = random_frame(16, 6, seed=stimulus_seed(55))
RGB_PIXELS = [gray_to_rgb24(p) for p in flatten(GRAY_FRAME)]


def run_wide_bus():
    """Alternative 1: regenerate the pipeline with a 24-bit base type."""
    top = Component("top")
    rb = top.child(make_container("read_buffer", "fifo", "rb", width=24, capacity=32))
    wb = top.child(make_container("write_buffer", "fifo", "wb", width=24, capacity=32))
    rit = top.child(make_iterator(rb, "forward", readable=True, name="rit"))
    wit = top.child(make_iterator(wb, "forward", writable=True, name="wit"))
    top.child(CopyAlgorithm("copy", rit, wit))
    sim = Simulator(top)
    received = stream_feed_and_drain(sim, rb.fill, wb.drain, RGB_PIXELS)
    return received, sim.cycles


def run_narrow_bus():
    """Alternative 2: keep the 8-bit pipeline, adapt 24-bit pixels at the edges."""
    top = Component("top")
    rb = top.child(make_container("read_buffer", "fifo", "rb", width=8, capacity=32))
    wb = top.child(make_container("write_buffer", "fifo", "wb", width=8, capacity=32))
    rit = top.child(make_iterator(rb, "forward", readable=True, name="rit"))
    wit = top.child(make_iterator(wb, "forward", writable=True, name="wit"))
    top.child(CopyAlgorithm("copy", rit, wit))
    down = top.child(WidthDownConverter("down", element_width=24, bus_width=8))
    up = top.child(WidthUpConverter("up", element_width=24, bus_width=8))

    @top.comb
    def connect():
        rb.fill.data.next = down.narrow_out.data.value
        transfer_in = down.narrow_out.valid.value and rb.fill.ready.value
        rb.fill.push.next = 1 if transfer_in else 0
        down.narrow_out.pop.next = 1 if transfer_in else 0
        up.narrow_in.data.next = wb.drain.data.value
        transfer_out = wb.drain.valid.value and up.narrow_in.ready.value
        up.narrow_in.push.next = 1 if transfer_out else 0
        wb.drain.pop.next = 1 if transfer_out else 0

    sim = Simulator(top)
    received = stream_feed_and_drain(sim, down.wide_in, up.wide_out, RGB_PIXELS,
                                     max_cycles=400_000)
    return received, sim.cycles


def test_alternative1_wide_bus(benchmark):
    received, cycles = benchmark.pedantic(run_wide_bus, rounds=1, iterations=1)
    assert received == RGB_PIXELS
    print(f"\n24-bit bus: {cycles} cycles for {len(RGB_PIXELS)} RGB pixels "
          f"({cycles / len(RGB_PIXELS):.2f} cycles/pixel)")
    assert cycles / len(RGB_PIXELS) < 2.0


def test_alternative2_narrow_bus(benchmark):
    received, cycles = benchmark.pedantic(run_narrow_bus, rounds=1, iterations=1)
    assert received == RGB_PIXELS
    print(f"\n8-bit bus:  {cycles} cycles for {len(RGB_PIXELS)} RGB pixels "
          f"({cycles / len(RGB_PIXELS):.2f} cycles/pixel)")
    # Three consecutive transfers per pixel: at least ~3x the wide-bus cost.
    _wide, wide_cycles = run_wide_bus()
    assert cycles >= 2.5 * wide_cycles
    assert cycles <= 8 * wide_cycles


def test_code_generator_covers_both_alternatives(benchmark):
    """'All this scenarios can be considered by the automatic code generator.'"""
    generator = CodeGenerator()

    def generate_both():
        wide = generator.generate_container("read_buffer", GenerationConfig(
            name="rbuffer_rgb24", data_width=24, binding="fifo",
            used_operations=frozenset({"empty", "pop"})))
        narrow = generator.generate_container("read_buffer", GenerationConfig(
            name="rbuffer_rgb24_over8", data_width=24, bus_width=8, binding="sram",
            used_operations=frozenset({"empty", "pop"})))
        return wide, narrow

    wide, narrow = benchmark(generate_both)
    assert wide.width_plan.beats == 1
    assert narrow.width_plan.beats == 3
    assert "std_logic_vector(23 downto 0)" in wide.emit()
    assert "width adaptation" in narrow.emit()
    assert "beat_count" in narrow.emit()
    assert RGB24.width // 8 == narrow.width_plan.beats
