"""E9 — Design-space characterisation of the container bindings (Section 3.4).

"The saa2vga examples represent two different points of the design space.
The first one (the FIFO implementation) provides maximum performance at the
highest cost.  The SRAM implementation is much smaller, but performance will
depend on memory access times."

The bench sweeps buffer capacity for the FIFO and SRAM bindings, printing the
area / access-time / power table the paper's characterisation step produces,
and asserts the trade-off shape: FIFO fastest, SRAM cheapest in on-chip
resources, both on the Pareto front at every capacity.
"""

import pytest

from bench_profile import scaled
from repro.synth import (
    characterize_design_space,
    format_table,
    measure_stream_cycles_per_element,
    pareto_front,
)

CAPACITIES = scaled((64, 256, 512), (64, 256))


def sweep():
    return characterize_design_space(capacities=CAPACITIES,
                                     bindings=("fifo", "sram"), elements=32)


def test_design_space_characterization(benchmark):
    points = benchmark.pedantic(sweep, rounds=1, iterations=1)
    rows = [point.row() for point in points]
    print()
    print(format_table(rows, title="Design-space characterisation "
                                   "(read buffer, per binding and capacity)."))

    by_key = {(p.binding, p.capacity): p for p in points}
    for capacity in CAPACITIES:
        fifo = by_key[("fifo", capacity)]
        sram = by_key[("sram", capacity)]
        # Maximum performance at the highest cost...
        assert fifo.cycles_per_element < sram.cycles_per_element / 2
        # ... versus much smaller on-chip storage cost.
        assert sram.area.total.brams == 0
        assert fifo.area.total.brams >= 1 or capacity * 8 < 2048
        # Off-chip power cost shows up in the proxy.
        assert sram.power_mw != fifo.power_mw

    front = pareto_front(points)
    labels = sorted(f"{p.binding}@{p.capacity}" for p in front)
    print(f"pareto front (region of interest): {', '.join(labels)}")
    for capacity in CAPACITIES:
        bindings_on_front = {p.binding for p in front if p.capacity == capacity}
        assert bindings_on_front == {"fifo", "sram"}


@pytest.mark.parametrize("latency", [1, 2, 4, 8])
def test_access_time_scaling_with_sram_latency(latency, benchmark):
    """The characterisation captures how external memory speed limits throughput."""
    cycles = benchmark.pedantic(
        measure_stream_cycles_per_element, args=("sram",),
        kwargs={"capacity": 64, "elements": 24,
                "extra_params": {"sram_latency": latency}},
        rounds=1, iterations=1)
    print(f"\nsram latency {latency} cycles -> {cycles:.1f} cycles/element")
    # Each element needs one SRAM write and one SRAM read plus handshake
    # overhead, so the per-element cost must grow with the device latency.
    assert cycles >= 2 * latency
    baseline = measure_stream_cycles_per_element("fifo", capacity=64, elements=24)
    assert cycles > baseline
