"""Performance bench — streaming throughput of every evaluated design.

Complements Table 3 (which reports area and clock) with the cycle-accurate
throughput of each design/binding, confirming two statements of the paper:

* the copy and blur pipelines sustain about one pixel per clock cycle over
  on-chip bindings ("ideally a new filtered pixel can be generated at each
  clock cycle");
* the SRAM binding trades that throughput for cost ("performance will depend
  on memory access times").

It also reports simulator wall-clock performance (cycles simulated per
second) so regressions in the RTL kernel itself are visible.
"""

import time

import pytest

from bench_profile import record_metric, scaled, stimulus_seed
from repro.designs import (
    BlurCustomDesign,
    Saa2VgaCustomFIFO,
    Saa2VgaCustomSRAM,
    VideoSystem,
    build_blur_pattern,
    build_dual_path_saa2vga,
    build_saa2vga_pattern,
    run_stream_through,
)
from repro.rtl import (
    COMPILED,
    COMPILED_BATCHED,
    EVENT,
    FIXPOINT,
    BatchedSimulator,
    Simulator,
)
from repro.video import flatten, golden_blur3x3, random_frame

FRAME_W, FRAME_H = scaled((24, 12), (12, 6))
FRAME = random_frame(FRAME_W, FRAME_H, seed=stimulus_seed(500))
PIXELS = flatten(FRAME)
BLUR_GOLDEN = flatten(golden_blur3x3(FRAME))

VARIANTS = {
    "saa2vga pattern/fifo": (lambda: build_saa2vga_pattern("fifo", capacity=32),
                             PIXELS),
    "saa2vga custom/fifo": (lambda: Saa2VgaCustomFIFO(capacity=32), PIXELS),
    "saa2vga pattern/sram": (lambda: build_saa2vga_pattern("sram", capacity=32),
                             PIXELS),
    "saa2vga custom/sram": (lambda: Saa2VgaCustomSRAM(capacity=32), PIXELS),
    "blur pattern": (lambda: build_blur_pattern(line_width=FRAME_W,
                                                out_capacity=32),
                     BLUR_GOLDEN),
    "blur custom": (lambda: BlurCustomDesign(line_width=FRAME_W,
                                             out_capacity=32),
                    BLUR_GOLDEN),
}


@pytest.mark.parametrize("label", list(VARIANTS))
def test_streaming_throughput(label, benchmark):
    factory, expected = VARIANTS[label]

    def run():
        return run_stream_through(factory(), FRAME, expected_outputs=len(expected))

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    assert result["pixels"] == expected
    throughput = result["outputs"] / result["cycles"]
    print(f"\n{label}: {result['cycles']} cycles, "
          f"{result['outputs']} output pixels, "
          f"{throughput:.3f} pixels/cycle")

    if "sram" in label:
        assert throughput < 0.2, "SRAM binding is memory-bound by construction"
    elif "blur" in label:
        assert throughput > 0.5
    else:
        assert throughput > 0.8


def test_pattern_throughput_equals_custom_throughput(benchmark):
    """The pattern adds no cycle-level overhead either."""
    def run_pair(binding):
        if binding == "fifo":
            pattern = build_saa2vga_pattern("fifo", capacity=32)
            custom = Saa2VgaCustomFIFO(capacity=32)
        else:
            pattern = build_saa2vga_pattern("sram", capacity=32)
            custom = Saa2VgaCustomSRAM(capacity=32)
        p = run_stream_through(pattern, FRAME)["cycles"]
        c = run_stream_through(custom, FRAME)["cycles"]
        return p, c

    results = benchmark.pedantic(lambda: [run_pair("fifo"), run_pair("sram")],
                                 rounds=1, iterations=1)
    for pattern_cycles, custom_cycles in results:
        assert abs(pattern_cycles - custom_cycles) <= max(4, 0.05 * custom_cycles)


def test_simulation_kernel_speed(benchmark):
    """Wall-clock speed of the RTL kernel on the FIFO copy pipeline."""

    def run():
        return run_stream_through(build_saa2vga_pattern("fifo", capacity=32), FRAME)

    result = benchmark(run)
    assert result["outputs"] == len(PIXELS)


# -- simulator-kernel speed guards -----------------------------------------------
#
# Simulated cycles per wall-clock second, measured per design per settle
# strategy.  Construction (including the compiled backend's one-time
# analysis+codegen) happens outside the timed region: the guards protect the
# *kernel* hot path, and sweeps amortise compilation across a grid anyway.
# Measurements are lazy and cached so the guard tests share one run, and
# every number lands in the BENCH json artifact via ``record_metric``.

#: Enough queued frames for the timed region to dwarf timer noise.
SPEED_FRAMES = scaled(8, 6)

SPEED_DESIGNS = {
    "saa2vga_fifo": lambda: build_saa2vga_pattern("fifo", capacity=32),
    "blur_pattern": lambda: build_blur_pattern(line_width=FRAME_W,
                                               out_capacity=32),
    "pipeline_dualpath": lambda: build_dual_path_saa2vga(capacity=16,
                                                         fifo_depth=8),
}

#: Expected output pixels per frame for each speed design (all are
#: identity streams except blur).
SPEED_GOLDEN = {
    "saa2vga_fifo": lambda: PIXELS,
    "blur_pattern": lambda: BLUR_GOLDEN,
    "pipeline_dualpath": lambda: PIXELS,
}

_cps_cache = {}


def cycles_per_second(design: str, strategy: str) -> float:
    """Best-of-3 simulated cycles/s for one design under one strategy."""
    key = (design, strategy)
    if key in _cps_cache:
        return _cps_cache[key]
    factory = SPEED_DESIGNS[design]
    first_frame_golden = SPEED_GOLDEN[design]()
    expected_per_frame = len(first_frame_golden)
    best = 0.0
    for _ in range(3):
        system = VideoSystem(factory(), frames=[FRAME] * SPEED_FRAMES)
        sim = Simulator(system, strategy=strategy)
        expected = expected_per_frame * SPEED_FRAMES
        start = time.perf_counter()
        sim.run_until(lambda: system.sink.count >= expected, 2_000_000)
        elapsed = time.perf_counter() - start
        assert system.sink.count == expected
        # Speed without correctness is no speed at all: the first frame's
        # content must be golden (later blur frames see history carried
        # across the frame boundary, so only the first is byte-comparable).
        assert system.received_pixels()[:len(first_frame_golden)] == \
            first_frame_golden
        best = max(best, sim.cycles / elapsed)
    _cps_cache[key] = best
    record_metric("cycles_per_second", design, strategy, round(best, 1))
    return best


def _speedup(design: str, fast: str, slow: str) -> float:
    ratio = cycles_per_second(design, fast) / cycles_per_second(design, slow)
    record_metric("speedup", design, f"{fast}_vs_{slow}", round(ratio, 3))
    print(f"\n{design}: {fast} {cycles_per_second(design, fast):,.0f} c/s, "
          f"{slow} {cycles_per_second(design, slow):,.0f} c/s "
          f"-> {ratio:.2f}x")
    return ratio


def test_event_scheduler_speedup_over_fixpoint(benchmark):
    """The event-driven scheduler must beat the fixpoint oracle clearly.

    Measured ~3.5x on the reference container; 2.0 leaves noise headroom
    while still catching any regression that loses the structural win.
    """
    speedup = benchmark.pedantic(_speedup, args=("saa2vga_fifo", EVENT, FIXPOINT),
                                 rounds=1, iterations=1)
    assert speedup >= 2.0


def test_compiled_backend_speedup_over_fixpoint(benchmark):
    """The compiled backend must beat the fixpoint oracle at least 2x.

    Measured ~7x on the reference container for the copy pipeline; the 2.0
    floor is the guarded acceptance criterion, with wide noise headroom.
    """
    speedup = benchmark.pedantic(_speedup,
                                 args=("saa2vga_fifo", COMPILED, FIXPOINT),
                                 rounds=1, iterations=1)
    assert speedup >= 2.0


def test_compiled_backend_beats_event_scheduler(benchmark):
    """Specialised straight-line settling must also beat event scheduling.

    Measured ~2.3x on the reference container; guarded at 1.2x so a loaded
    CI host cannot flake the assertion while a real regression (losing the
    single-pass structure) still trips it.
    """
    speedup = benchmark.pedantic(_speedup,
                                 args=("saa2vga_fifo", COMPILED, EVENT),
                                 rounds=1, iterations=1)
    assert speedup >= 1.2


def _obs_off_cps(design: str) -> float:
    """Compiled cycles/s measured *after* a telemetry enable+disable cycle.

    The telemetry dispatch in ``Simulator.step`` must leave the disabled
    hot path untouched — including after a profiling session has come and
    gone.  Exercising enable → trace a little → disable before measuring
    catches any state the obs layer might leak into the fast loop.
    """
    key = (design, "compiled-obs-off")
    if key in _cps_cache:
        return _cps_cache[key]
    from repro.obs import profile, tracing
    tracing.enable()
    profile.enable()
    warm = Simulator(SPEED_DESIGNS[design](), strategy=COMPILED)
    warm.step(64)
    profile.disable()
    tracing.disable()
    tracing.drain()
    factory = SPEED_DESIGNS[design]
    first_frame_golden = SPEED_GOLDEN[design]()
    expected = len(first_frame_golden) * SPEED_FRAMES
    best = 0.0
    for _ in range(3):
        system = VideoSystem(factory(), frames=[FRAME] * SPEED_FRAMES)
        sim = Simulator(system, strategy=COMPILED)
        start = time.perf_counter()
        sim.run_until(lambda: system.sink.count >= expected, 2_000_000)
        elapsed = time.perf_counter() - start
        assert system.sink.count == expected
        assert system.received_pixels()[:len(first_frame_golden)] == \
            first_frame_golden
        best = max(best, sim.cycles / elapsed)
    _cps_cache[key] = best
    record_metric("cycles_per_second", design, "compiled-obs-off",
                  round(best, 1))
    return best


def test_disabled_telemetry_keeps_compiled_throughput(benchmark):
    """Telemetry off must cost (nearly) nothing on the compiled hot path.

    The compiled-over-fixpoint floor is 2.0x; with the telemetry dispatch
    check in ``step()`` the same measurement after an enable+disable cycle
    must stay within 3% of it, i.e. >= 1.94x (mirrored in
    ``check_regression.py`` as the ``compiled-obs-off`` floor).  The
    structural half of the promise — zero span records, zero obs
    allocations — is pinned by ``tests/obs/test_overhead.py``.
    """
    def ratio():
        value = (_obs_off_cps("saa2vga_fifo")
                 / cycles_per_second("saa2vga_fifo", FIXPOINT))
        record_metric("speedup", "saa2vga_fifo",
                      "compiled-obs-off_vs_fixpoint", round(value, 3))
        print(f"\nsaa2vga_fifo: compiled(obs off) "
              f"{_obs_off_cps('saa2vga_fifo'):,.0f} c/s, fixpoint "
              f"{cycles_per_second('saa2vga_fifo', FIXPOINT):,.0f} c/s "
              f"-> {value:.2f}x")
        return value

    speedup = benchmark.pedantic(ratio, rounds=1, iterations=1)
    assert speedup >= 1.94


def test_compiled_backend_speedup_on_blur(benchmark):
    """The window/convolution pipeline also gains from compilation.

    Blur keeps one genuinely cyclic group (window feedback), so its gain is
    smaller than the copy pipeline's; measured ~2.2x over fixpoint, guarded
    at 1.5x.
    """
    speedup = benchmark.pedantic(_speedup,
                                 args=("blur_pattern", COMPILED, FIXPOINT),
                                 rounds=1, iterations=1)
    assert speedup >= 1.5


# -- batched lockstep sweep throughput ----------------------------------------
#
# A 16-point saa2vga grid — the canonical explore-sweep shape — run once as
# sixteen scalar compiled sessions and once as a single 16-lane batched
# lockstep session.  All shapes share one frame area so every lane finishes
# on the same cycle: the ratio then measures lockstep efficiency, not lane
# overrun.  Simulator construction (including codegen) is *inside* the
# timed region on both sides: a real sweep pays per-point construction, and
# amortising one emission across all lanes (emit once + rebind) is half of
# what the batched backend buys — sixteen scalar sessions pay codegen
# sixteen times.

#: 16 equal-area frame shapes (quick profile area 60, full area 240); the
#: per-lane stimulus still differs because every lane seeds its own frame.
SWEEP_SHAPES = scaled(
    [(16, 15), (20, 12), (24, 10), (30, 8), (40, 6), (48, 5), (60, 4),
     (80, 3), (12, 20), (10, 24), (15, 16), (8, 30), (6, 40), (5, 48),
     (4, 60), (3, 80)],
    [(10, 6), (12, 5), (15, 4), (20, 3), (6, 10), (5, 12), (4, 15),
     (3, 20), (10, 6), (12, 5), (15, 4), (20, 3), (6, 10), (5, 12),
     (4, 15), (3, 20)],
)

SWEEP_FRAMES = [random_frame(w, h, seed=stimulus_seed(700 + i))
                for i, (w, h) in enumerate(SWEEP_SHAPES)]


def _sweep_system(frame):
    return VideoSystem(build_saa2vga_pattern("fifo", capacity=32),
                       frames=[frame])


def _sweep_cps(strategy: str) -> float:
    """Best-of-3 end-to-end lane-cycles/s for the 16-point sweep.

    Both strategies are normalised to *lane*-cycles (a batch cycle advances
    every lane once) so the recorded numbers divide into a meaningful ratio.
    The clock covers construction *and* simulation — the cost a sweep
    actually pays per grid point.
    """
    key = ("saa2vga_sweep16", strategy)
    if key in _cps_cache:
        return _cps_cache[key]
    best = 0.0
    for _ in range(3):
        targets = [len(flatten(frame)) for frame in SWEEP_FRAMES]
        if strategy == COMPILED_BATCHED:
            start = time.perf_counter()
            systems = [_sweep_system(frame) for frame in SWEEP_FRAMES]
            batch = BatchedSimulator(systems)
            conditions = [(lambda s=system, n=n: s.sink.count >= n)
                          for system, n in zip(systems, targets)]
            batch.run_lockstep(conditions, max_cycles=2_000_000)
            elapsed = time.perf_counter() - start
            lane_cycles = batch.cycles * batch.n_lanes
        else:
            start = time.perf_counter()
            systems = [_sweep_system(frame) for frame in SWEEP_FRAMES]
            sims = [Simulator(system, strategy=strategy)
                    for system in systems]
            for sim, system, n in zip(sims, systems, targets):
                sim.run_until(
                    lambda system=system, n=n: system.sink.count >= n,
                    2_000_000)
            elapsed = time.perf_counter() - start
            lane_cycles = sum(sim.cycles for sim in sims)
        for system, n, frame in zip(systems, targets, SWEEP_FRAMES):
            assert system.received_pixels()[:n] == flatten(frame)
        best = max(best, lane_cycles / elapsed)
    _cps_cache[key] = best
    record_metric("cycles_per_second", "saa2vga_sweep16", strategy, round(best, 1))
    return best


def test_batched_sweep_speedup_over_scalar_compiled(benchmark):
    """One 16-lane lockstep session must beat 16 scalar compiled sessions 3x.

    This is the acceptance floor for the batched backend: measured ~3.5-4.3x
    on the reference container (the vectorized kernel amortises Python
    dispatch across lanes, and emit-once-plus-rebind amortises codegen);
    3.0 is the guarded criterion, mirrored in ``check_regression.py``.
    """
    def ratio():
        value = _sweep_cps(COMPILED_BATCHED) / _sweep_cps(COMPILED)
        record_metric("speedup", "saa2vga_sweep16",
                      "compiled_batched_vs_compiled", round(value, 3))
        print(f"\nsaa2vga_sweep16: compiled-batched "
              f"{_sweep_cps(COMPILED_BATCHED):,.0f} lane-c/s, compiled "
              f"{_sweep_cps(COMPILED):,.0f} lane-c/s -> {value:.2f}x")
        return value

    speedup = benchmark.pedantic(ratio, rounds=1, iterations=1)
    assert speedup >= 3.0


# -- elaborated pipeline graphs (repro.flow) ---------------------------------


def test_pipeline_streaming_throughput(benchmark):
    """The dual-path graph pipeline sustains near one pixel per cycle.

    Split/merge rotation costs nothing in steady state (the two copy paths
    run at half rate each, in parallel); measured ~0.93 pixels/cycle,
    guarded at 0.6 to leave headroom for boundary effects on small frames.
    """
    def run():
        return run_stream_through(
            build_dual_path_saa2vga(capacity=16, fifo_depth=8), FRAME)

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    assert result["pixels"] == PIXELS
    throughput = result["outputs"] / result["cycles"]
    print(f"\npipeline dual-path: {result['cycles']} cycles, "
          f"{throughput:.3f} pixels/cycle")
    assert throughput > 0.6


def test_pipeline_compiled_speedup_over_fixpoint(benchmark):
    """Elaborated pipelines must profit from the compiled backend too.

    The graph shell adds many small bridge processes — exactly the shape
    the compiled scheduler dissolves; measured ~5x over fixpoint on the
    dual-path pipeline, guarded at 1.5x.
    """
    speedup = benchmark.pedantic(
        _speedup, args=("pipeline_dualpath", COMPILED, FIXPOINT),
        rounds=1, iterations=1)
    assert speedup >= 1.5
