"""Performance bench — streaming throughput of every evaluated design.

Complements Table 3 (which reports area and clock) with the cycle-accurate
throughput of each design/binding, confirming two statements of the paper:

* the copy and blur pipelines sustain about one pixel per clock cycle over
  on-chip bindings ("ideally a new filtered pixel can be generated at each
  clock cycle");
* the SRAM binding trades that throughput for cost ("performance will depend
  on memory access times").

It also reports simulator wall-clock performance (cycles simulated per
second) so regressions in the RTL kernel itself are visible.
"""

import time

import pytest

from bench_profile import scaled
from repro.designs import (
    BlurCustomDesign,
    Saa2VgaCustomFIFO,
    Saa2VgaCustomSRAM,
    build_blur_pattern,
    build_saa2vga_pattern,
    run_stream_through,
)
from repro.rtl import EVENT, FIXPOINT
from repro.video import flatten, golden_blur3x3, random_frame

FRAME_W, FRAME_H = scaled((24, 12), (12, 6))
FRAME = random_frame(FRAME_W, FRAME_H, seed=500)
PIXELS = flatten(FRAME)
BLUR_GOLDEN = flatten(golden_blur3x3(FRAME))

VARIANTS = {
    "saa2vga pattern/fifo": (lambda: build_saa2vga_pattern("fifo", capacity=32),
                             PIXELS),
    "saa2vga custom/fifo": (lambda: Saa2VgaCustomFIFO(capacity=32), PIXELS),
    "saa2vga pattern/sram": (lambda: build_saa2vga_pattern("sram", capacity=32),
                             PIXELS),
    "saa2vga custom/sram": (lambda: Saa2VgaCustomSRAM(capacity=32), PIXELS),
    "blur pattern": (lambda: build_blur_pattern(line_width=FRAME_W,
                                                out_capacity=32),
                     BLUR_GOLDEN),
    "blur custom": (lambda: BlurCustomDesign(line_width=FRAME_W,
                                             out_capacity=32),
                    BLUR_GOLDEN),
}


@pytest.mark.parametrize("label", list(VARIANTS))
def test_streaming_throughput(label, benchmark):
    factory, expected = VARIANTS[label]

    def run():
        return run_stream_through(factory(), FRAME, expected_outputs=len(expected))

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    assert result["pixels"] == expected
    throughput = result["outputs"] / result["cycles"]
    print(f"\n{label}: {result['cycles']} cycles, "
          f"{result['outputs']} output pixels, "
          f"{throughput:.3f} pixels/cycle")

    if "sram" in label:
        assert throughput < 0.2, "SRAM binding is memory-bound by construction"
    elif "blur" in label:
        assert throughput > 0.5
    else:
        assert throughput > 0.8


def test_pattern_throughput_equals_custom_throughput(benchmark):
    """The pattern adds no cycle-level overhead either."""
    def run_pair(binding):
        if binding == "fifo":
            pattern = build_saa2vga_pattern("fifo", capacity=32)
            custom = Saa2VgaCustomFIFO(capacity=32)
        else:
            pattern = build_saa2vga_pattern("sram", capacity=32)
            custom = Saa2VgaCustomSRAM(capacity=32)
        p = run_stream_through(pattern, FRAME)["cycles"]
        c = run_stream_through(custom, FRAME)["cycles"]
        return p, c

    results = benchmark.pedantic(lambda: [run_pair("fifo"), run_pair("sram")],
                                 rounds=1, iterations=1)
    for pattern_cycles, custom_cycles in results:
        assert abs(pattern_cycles - custom_cycles) <= max(4, 0.05 * custom_cycles)


def test_simulation_kernel_speed(benchmark):
    """Wall-clock speed of the RTL kernel on the FIFO copy pipeline."""

    def run():
        return run_stream_through(build_saa2vga_pattern("fifo", capacity=32), FRAME)

    result = benchmark(run)
    assert result["outputs"] == len(PIXELS)


def test_event_scheduler_speedup_over_fixpoint(benchmark):
    """The event-driven scheduler must beat the fixpoint oracle clearly.

    Measures simulated cycles per wall-clock second for both settle
    strategies on the saa2vga FIFO design (best-of-3 each, so scheduler
    noise on a loaded host does not mask the structural difference) and
    asserts the speedup that motivated the event-driven rewrite.
    """

    def cycles_per_second(strategy):
        best = 0.0
        for _ in range(3):
            start = time.perf_counter()
            result = run_stream_through(
                build_saa2vga_pattern("fifo", capacity=32), FRAME,
                strategy=strategy)
            elapsed = time.perf_counter() - start
            assert result["pixels"] == PIXELS
            best = max(best, result["cycles"] / elapsed)
        return best

    event_cps = benchmark.pedantic(cycles_per_second, args=(EVENT,),
                                   rounds=1, iterations=1)
    fixpoint_cps = cycles_per_second(FIXPOINT)
    speedup = event_cps / fixpoint_cps
    print(f"\nsaa2vga pattern/fifo: event {event_cps:,.0f} cycles/s, "
          f"fixpoint {fixpoint_cps:,.0f} cycles/s -> {speedup:.2f}x")
    # Measured ~3.3x on the reference container; 2.0 leaves noise headroom
    # while still catching any regression that loses the structural win.
    assert speedup >= 2.0
