"""Benchmark-suite configuration.

The ``--quick`` flag itself is registered in the repo-root ``conftest.py``
(pytest only honours ``addoption`` from initial conftests); this one just
surfaces which sizing profile the benchmarks are running under.
"""

import bench_profile


def pytest_report_header(config):
    from repro.verify.rng import SEED_ENV, default_seed

    profile = "quick (smoke)" if bench_profile.quick_mode() else "full"
    header = f"repro benchmark profile: {profile}"
    path = bench_profile.metrics_path()
    if path:
        header += f" (metrics -> {path})"
    header += (f"; stimulus {SEED_ENV}={default_seed()} "
               f"(repro.verify.rng named streams)")
    return header


def pytest_sessionfinish(session, exitstatus):
    """Write the benchmark-metric JSON artifact when requested via env."""
    path = bench_profile.metrics_path()
    if path and bench_profile.metrics():
        bench_profile.write_metrics(path)
