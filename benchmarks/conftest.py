"""Benchmark-suite configuration.

The ``--quick`` flag itself is registered in the repo-root ``conftest.py``
(pytest only honours ``addoption`` from initial conftests); this one just
surfaces which sizing profile the benchmarks are running under.
"""

import bench_profile


def pytest_report_header(config):
    profile = "quick (smoke)" if bench_profile.quick_mode() else "full"
    return f"repro benchmark profile: {profile}"
