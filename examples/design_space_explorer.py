#!/usr/bin/env python3
"""Design-space exploration of container bindings (Section 3.4).

"Since components are generated automatically, it is feasible to generate
versions of each one for every physical target and range of configuration
parameters.  This characterization of the design space would delimit the
region of interest given a certain set of constraints."

The example sweeps the read-buffer container over its FIFO and external-SRAM
bindings for a range of capacities, characterising each point by estimated
area (FFs/LUTs/block RAM), measured streaming access time (cycles per
element) and a power proxy, then prints the Pareto-optimal "region of
interest" and a recommendation for two different constraint mixes.

Run with:  python examples/design_space_explorer.py
"""

from repro.synth import characterize_design_space, format_table, pareto_front

CAPACITIES = (32, 64, 128, 256, 512)


def recommend(points, max_brams=None, max_cycles_per_element=None,
              min_capacity=0):
    """Pick the cheapest point satisfying the given constraints."""
    feasible = [
        point for point in points
        if point.capacity >= min_capacity
        and (max_brams is None or point.area.total.brams <= max_brams)
        and (max_cycles_per_element is None
             or point.cycles_per_element <= max_cycles_per_element)
    ]
    if not feasible:
        return None
    return min(feasible, key=lambda p: (p.area.total.total_luts
                                        + p.area.total.ffs
                                        + 384 * p.area.total.brams))


def main() -> None:
    print("characterising read-buffer bindings on the XSB-300E target ...\n")
    points = characterize_design_space(capacities=CAPACITIES,
                                       bindings=("fifo", "sram"), elements=32)
    print(format_table([point.row() for point in points],
                       title="Design-space characterisation (read buffer)."))

    front = pareto_front(points)
    print("Pareto front (region of interest), per capacity:")
    for capacity in CAPACITIES:
        labels = [f"{p.binding} ({p.cycles_per_element:.1f} cyc/elem, "
                  f"{p.area.total.brams} BRAM)"
                  for p in front if p.capacity == capacity]
        print(f"  capacity {capacity:4d}: " + "; ".join(labels))

    print("\nrecommendations (buffer of at least 256 elements):")
    throughput_first = recommend(points, max_cycles_per_element=2.0,
                                 min_capacity=256)
    area_first = recommend(points, max_brams=0, min_capacity=256)
    if throughput_first:
        print(f"  streaming-rate constraint (<= 2 cycles/element): "
              f"{throughput_first.binding} @ capacity {throughput_first.capacity} "
              f"-> {throughput_first.area.total.brams} BRAM, "
              f"{throughput_first.area.total.total_luts} LUTs")
    if area_first:
        print(f"  zero-block-RAM constraint: "
              f"{area_first.binding} @ capacity {area_first.capacity} "
              f"-> {area_first.cycles_per_element:.1f} cycles/element, "
              f"{area_first.power_mw:.1f} mW (proxy)")
    print("\nThe two recommendations are the paper's two saa2vga design points:")
    print("  'The first one (the FIFO implementation) provides maximum performance")
    print("   at the highest cost. The SRAM implementation is much smaller, but")
    print("   performance will depend on memory access times.'")


if __name__ == "__main__":
    main()
