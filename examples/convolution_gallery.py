#!/usr/bin/env python3
"""Convolution gallery: one datapath, four filters.

The paper's conclusions call for domain libraries of "common algorithms
(convolution filters, image labelling ...) and specialized iterators".  This
example instantiates the general 3x3 convolution algorithm over the same
3-line-buffer read buffer and window iterator used by the blur design, and
runs four different kernels (identity, smooth, sharpen, edge detect) over the
same synthetic frame — changing only constants, never structure.  Every
output is verified bit-exactly against the software golden model.

Run with:  python examples/convolution_gallery.py
"""

from repro.core import (
    EDGE_KERNEL,
    IDENTITY_KERNEL,
    SHARPEN_KERNEL,
    SMOOTH_KERNEL,
    Conv3x3Algorithm,
    golden_convolve3x3,
    make_container,
    make_iterator,
)
from repro.rtl import Component, Simulator
from repro.synth import estimate_design
from repro.testing import stream_feed_and_drain
from repro.video import checkerboard_frame, flatten, unflatten

WIDTH, HEIGHT = 28, 10
SHADES = " .:-=+*#%@"


def ascii_render(frame, label):
    print(f"  {label}")
    for row in frame:
        print("    " + "".join(SHADES[min(len(SHADES) - 1,
                                          pixel * len(SHADES) // 256)]
                               for pixel in row))
    print()


def run_kernel(kernel, frame):
    top = Component(f"conv_{kernel.name}")
    rb = top.child(make_container("read_buffer", "linebuffer3", "rbuffer",
                                  width=8, line_width=WIDTH))
    wb = top.child(make_container("write_buffer", "fifo", "wbuffer",
                                  width=8, capacity=64))
    win_it = top.child(make_iterator(rb, "window", readable=True, name="win_it"))
    out_it = top.child(make_iterator(wb, "forward", writable=True, name="out_it"))
    top.child(Conv3x3Algorithm("conv", win_it, out_it, line_width=WIDTH,
                               kernel=kernel))
    sim = Simulator(top)
    received = stream_feed_and_drain(sim, rb.fill, wb.drain, flatten(frame),
                                     expected=(WIDTH - 2) * (HEIGHT - 2))
    golden = flatten(golden_convolve3x3(frame, kernel))
    estimate = estimate_design(top).row()
    return unflatten(received, WIDTH - 2), received == golden, sim.cycles, estimate


def main() -> None:
    frame = checkerboard_frame(WIDTH, HEIGHT, tile=4, low=40, high=210)
    ascii_render(frame, f"input frame ({WIDTH}x{HEIGHT})")
    for kernel in (IDENTITY_KERNEL, SMOOTH_KERNEL, SHARPEN_KERNEL, EDGE_KERNEL):
        output, exact, cycles, estimate = run_kernel(kernel, frame)
        status = "bit-exact" if exact else "MISMATCH"
        print(f"kernel {kernel.name:8s} gain {kernel.gain:4.1f}  "
              f"{cycles} cycles  [{status} vs golden]  "
              f"estimate: {estimate['FFs']} FFs, {estimate['LUTs']} LUTs, "
              f"{estimate['blockRAM']} BRAM")
        ascii_render(output, f"{kernel.name} output")


if __name__ == "__main__":
    main()
