-- Generated write_buffer over sram (operations: full, push; protocol: strobe_done; element 8 bits over a 8-bit bus)
library ieee;
use ieee.std_logic_1164.all;
use ieee.numeric_std.all;

entity saa2vga_sram_wbuffer_sram is
  port (
    -- methods
    m_full : in std_logic;
    m_push : in std_logic;
    -- params
    is_full : out std_logic;
    data : in std_logic_vector(7 downto 0);
    done : out std_logic;
    -- implementation interface
    p_addr : out std_logic_vector(8 downto 0);
    p_data : out std_logic_vector(7 downto 0);
    req : out std_logic;
    ack : in std_logic
  );
end saa2vga_sram_wbuffer_sram;

architecture generated of saa2vga_sram_wbuffer_sram is
  constant DEPTH : natural := 512;
  signal head_ptr : unsigned(8 downto 0);
  signal tail_ptr : unsigned(8 downto 0);
  signal occupancy : unsigned(9 downto 0);
  signal prefetch : std_logic_vector(7 downto 0);
  signal prefetch_valid : std_logic := '0';
  signal hold_valid : std_logic := '0';
  signal state : state_t := st_idle;
begin
  -- circular buffer over external SRAM: begin/end pointer registers
  -- plus an access FSM driving the req/ack handshake
  ctrl: process(clk)
  begin
    if rising_edge(clk) then
      if rst = '1' then
        head_ptr  <= (others => '0');
        tail_ptr  <= (others => '0');
        occupancy <= (others => '0');
        state     <= st_idle;
      else
        case state is
          when st_idle =>
            if hold_valid = '1' and occupancy /= DEPTH then
              p_addr <= std_logic_vector(tail_ptr);
              req    <= '1';
              state  <= st_write;
            end if;
          when st_write =>
            if ack = '1' then
              tail_ptr  <= tail_ptr + 1;
              occupancy <= occupancy + 1;
              req       <= '0';
              state     <= st_release;
            end if;
          when st_release =>
            if ack = '0' then
              state <= st_idle;
            end if;
          when others =>
            state <= st_idle;
        end case;
      end if;
    end if;
  end process;
  is_full <= '1' when occupancy = DEPTH else '0';
  done <= m_push and not is_full;
end generated;
