-- Generated forward iterator over read_buffer (operations: inc, read)
library ieee;
use ieee.std_logic_1164.all;
use ieee.numeric_std.all;

entity saa2vga_fifo_rbuffer_it is
  port (
    -- iterator operations
    m_inc : in std_logic;
    m_read : in std_logic;
    -- params
    data : out std_logic_vector(7 downto 0);
    done : out std_logic;
    -- container interface
    c_empty : out std_logic;
    c_size : out std_logic;
    c_pop : out std_logic;
    c_data : in std_logic_vector(7 downto 0);
    c_done : in std_logic
  );
end saa2vga_fifo_rbuffer_it;

architecture generated of saa2vga_fifo_rbuffer_it is
begin
  -- iterator wrapper: renames operations onto the container
  c_pop <= m_inc;
  data <= c_data;
  done <= c_done;
end generated;
