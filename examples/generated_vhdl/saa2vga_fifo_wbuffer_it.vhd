-- Generated forward iterator over write_buffer (operations: inc, write)
library ieee;
use ieee.std_logic_1164.all;
use ieee.numeric_std.all;

entity saa2vga_fifo_wbuffer_it is
  port (
    -- iterator operations
    m_inc : in std_logic;
    m_write : in std_logic;
    -- params
    data : in std_logic_vector(7 downto 0);
    done : out std_logic;
    -- container interface
    c_full : out std_logic;
    c_size : out std_logic;
    c_push : out std_logic;
    c_data : out std_logic_vector(7 downto 0);
    c_done : in std_logic
  );
end saa2vga_fifo_wbuffer_it;

architecture generated of saa2vga_fifo_wbuffer_it is
begin
  -- iterator wrapper: renames operations onto the container
  c_push <= m_inc;
  c_data <= data;
  done <= c_done;
end generated;
