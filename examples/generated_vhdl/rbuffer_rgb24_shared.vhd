-- Generated read_buffer over sram (operations: empty, pop; protocol: strobe_done; element 24 bits over a 8-bit bus)
library ieee;
use ieee.std_logic_1164.all;
use ieee.numeric_std.all;

entity rbuffer_rgb24_shared is
  port (
    -- methods
    m_empty : in std_logic;
    m_pop : in std_logic;
    -- params
    is_empty : out std_logic;
    data : out std_logic_vector(7 downto 0);
    done : out std_logic;
    -- implementation interface
    p_addr : out std_logic_vector(10 downto 0);
    p_data : in std_logic_vector(7 downto 0);
    req : out std_logic;
    ack : in std_logic
  );
end rbuffer_rgb24_shared;

architecture generated of rbuffer_rgb24_shared is
  constant DEPTH : natural := 1536;
  signal head_ptr : unsigned(10 downto 0);
  signal tail_ptr : unsigned(10 downto 0);
  signal occupancy : unsigned(11 downto 0);
  signal prefetch : std_logic_vector(7 downto 0);
  signal prefetch_valid : std_logic := '0';
  signal hold_valid : std_logic := '0';
  signal state : state_t := st_idle;
begin
  -- circular buffer over external SRAM: begin/end pointer registers
  -- plus an access FSM driving the req/ack handshake
  ctrl: process(clk)
  begin
    if rising_edge(clk) then
      if rst = '1' then
        head_ptr  <= (others => '0');
        tail_ptr  <= (others => '0');
        occupancy <= (others => '0');
        state     <= st_idle;
      else
        case state is
          when st_idle =>
            if occupancy /= 0 and prefetch_valid = '0' then
              p_addr <= std_logic_vector(head_ptr);
              req    <= '1';
              state  <= st_read;
            end if;
          when st_read =>
            if ack = '1' then
              prefetch       <= p_data;
              prefetch_valid <= '1';
              head_ptr       <= head_ptr + 1;
              occupancy      <= occupancy - 1;
              req            <= '0';
              state          <= st_release;
            end if;
          when st_release =>
            if ack = '0' then
              state <= st_idle;
            end if;
          when others =>
            state <= st_idle;
        end case;
      end if;
    end if;
  end process;
  -- width adaptation: 24-bit elements moved as 3 x 8-bit transfers (beat counter 0 to 2)
  is_empty <= '1' when occupancy = 0 else '0';
  data <= prefetch;
  done <= m_pop and prefetch_valid;
  -- width adaptation: 24-bit element over a 8-bit bus (3 beats per element)
  signal beat_count : unsigned(1 downto 0);
  signal shift_reg  : std_logic_vector(23 downto 0);
  adapt: process(clk)
  begin
    if rising_edge(clk) then
      if beat_accepted = '1' then
        shift_reg <= shift_reg(15 downto 0) & p_data;
        if beat_count = 2 then
          beat_count   <= (others => '0');
          element_done <= '1';
        else
          beat_count   <= beat_count + 1;
          element_done <= '0';
        end if;
      end if;
    end if;
  end process;
end generated;
