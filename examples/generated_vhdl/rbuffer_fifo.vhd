-- Generated read_buffer over fifo (operations: empty, size, pop; protocol: valid_ready; element 8 bits over a 8-bit bus)
library ieee;
use ieee.std_logic_1164.all;
use ieee.numeric_std.all;

entity rbuffer_fifo is
  port (
    -- methods
    m_empty : in std_logic;
    m_size : in std_logic;
    m_pop : in std_logic;
    -- params
    is_empty : out std_logic;
    count : out std_logic_vector(15 downto 0);
    data : out std_logic_vector(7 downto 0);
    done : out std_logic;
    -- implementation interface
    p_empty : in std_logic;
    p_read : out std_logic;
    p_data : in std_logic_vector(7 downto 0)
  );
end rbuffer_fifo;

architecture generated of rbuffer_fifo is
begin
  -- pure wrapper of the FIFO core: no extra logic
  is_empty <= p_empty;
  count <= (others => '0');  -- occupancy is tracked inside the FIFO core
  p_read <= m_pop;
  data <= p_data;
  done <= m_pop and not p_empty;
end generated;
