-- Generated write_buffer over fifo (operations: full, push; protocol: valid_ready; element 8 bits over a 8-bit bus)
library ieee;
use ieee.std_logic_1164.all;
use ieee.numeric_std.all;

entity saa2vga_fifo_wbuffer_fifo is
  port (
    -- methods
    m_full : in std_logic;
    m_push : in std_logic;
    -- params
    is_full : out std_logic;
    data : in std_logic_vector(7 downto 0);
    done : out std_logic;
    -- implementation interface
    p_full : in std_logic;
    p_write : out std_logic;
    p_data : out std_logic_vector(7 downto 0)
  );
end saa2vga_fifo_wbuffer_fifo;

architecture generated of saa2vga_fifo_wbuffer_fifo is
begin
  -- pure wrapper of the FIFO core: no extra logic
  is_full <= p_full;
  p_write <= m_push;
  p_data <= data_in;
  done <= m_push and not p_full;
end generated;
