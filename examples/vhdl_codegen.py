#!/usr/bin/env python3
"""Metaprogramming demo: generate the VHDL components of the example designs.

Reproduces Figures 4 and 5 of the paper (the ``rbuffer_fifo`` and
``rbuffer_sram`` entities), then generates the full container/iterator
library for both saa2vga bindings — with operation pruning, width adaptation
for a 24-bit RGB variant, and arbitration for a shared external SRAM — and
writes every unit into ``examples/generated_vhdl/``.

Run with:  python examples/vhdl_codegen.py
"""

from pathlib import Path

from repro.metagen import (
    CodeGenerator,
    GenerationConfig,
    figure4_rbuffer_fifo,
    figure5_rbuffer_sram,
)

OUTPUT_DIR = Path(__file__).resolve().parent / "generated_vhdl"


def main() -> None:
    OUTPUT_DIR.mkdir(exist_ok=True)
    generator = CodeGenerator()
    units = []

    # Figures 4 and 5, exactly as printed in the paper.
    figure4 = figure4_rbuffer_fifo()
    figure5 = figure5_rbuffer_sram()
    units += [figure4.vhdl, figure5.vhdl]
    print("=== Figure 4: rbuffer over a FIFO device ===\n")
    print(figure4.emit())
    print("=== Figure 5: rbuffer over an SRAM device ===\n")
    print(figure5.emit())

    # The complete library of both saa2vga design variants.
    for binding in ("fifo", "sram"):
        for generated in generator.generate_design_library(
                f"saa2vga_{binding}", binding=binding, depth=512):
            units.append(generated.vhdl)
            units.extend(generated.extra_files)

    # A 24-bit RGB read buffer carried over an 8-bit bus (width adaptation),
    # stored in an SRAM shared with another client (arbitration).
    rgb = generator.generate_container("read_buffer", GenerationConfig(
        name="rbuffer_rgb24_shared", data_width=24, bus_width=8, binding="sram",
        shared_resource=True, sharers=2,
        used_operations=frozenset({"empty", "pop"})))
    units.append(rgb.vhdl)
    units.extend(rgb.extra_files)
    print("=== RGB-over-8-bit-bus variant: "
          f"{rgb.width_plan.beats} transfers per pixel, "
          f"protocol {rgb.protocol.name}, "
          f"{len(rgb.extra_files)} arbitration unit(s) ===\n")

    for unit in units:
        path = OUTPUT_DIR / unit.filename()
        path.write_text(unit.emit())
    print(f"wrote {len(units)} VHDL design units to {OUTPUT_DIR}/")
    for unit in units:
        print(f"  {unit.filename()}")


if __name__ == "__main__":
    main()
