#!/usr/bin/env python3
"""The blur example of the paper: a 3x3 filter over the 3-line-buffer binding.

Runs a synthetic frame through the pattern-based blur pipeline, checks the
output bit-exactly against the software golden model, renders a small ASCII
preview of input and output, and prints the resource comparison against the
hand-written baseline (the reproduced ``blur`` row of Table 3).

Run with:  python examples/blur_filter.py
"""

from repro.designs import BlurCustomDesign, build_blur_pattern, run_stream_through
from repro.synth import DesignComparison, estimate_design, table3
from repro.video import checkerboard_frame, golden_blur3x3, unflatten

WIDTH, HEIGHT = 32, 12
SHADES = " .:-=+*#%@"


def ascii_render(frame, label: str) -> None:
    print(f"  {label}")
    for row in frame:
        line = "".join(SHADES[min(len(SHADES) - 1, pixel * len(SHADES) // 256)]
                       for pixel in row)
        print(f"    {line}")
    print()


def main() -> None:
    frame = checkerboard_frame(WIDTH, HEIGHT, tile=3, low=30, high=220)
    golden = golden_blur3x3(frame)

    print("=== blur: 3x3 box filter over a 3-line-buffer read buffer ===\n")
    design = build_blur_pattern(line_width=WIDTH, out_capacity=64)
    for key, value in design.describe().items():
        print(f"  {key:12s} {value}")
    print()

    result = run_stream_through(design, frame,
                                expected_outputs=(WIDTH - 2) * (HEIGHT - 2))
    output = unflatten(result["pixels"], WIDTH - 2)
    status = "bit-exact" if output == golden else "MISMATCH"
    print(f"  simulated {result['cycles']} cycles, produced "
          f"{result['outputs']} filtered pixels "
          f"({result['outputs'] / result['cycles']:.2f} pixels/cycle) "
          f"[{status} vs golden model]\n")

    ascii_render(frame, f"input frame ({WIDTH}x{HEIGHT}, checkerboard)")
    ascii_render(output, f"blurred output ({WIDTH - 2}x{HEIGHT - 2})")

    print("=== resource comparison against the ad-hoc implementation ===\n")
    comparison = DesignComparison(
        "blur",
        estimate_design(build_blur_pattern(line_width=320, out_capacity=64)),
        estimate_design(BlurCustomDesign(line_width=320, out_capacity=64)))
    print(table3([comparison]))
    print("(cells are pattern/custom; QVGA-sized 320-pixel lines)")


if __name__ == "__main__":
    main()
