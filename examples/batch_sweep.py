#!/usr/bin/env python3
"""Batched design-space sweep through the exploration runner.

Where ``design_space_explorer.py`` characterises one container in isolation,
this example sweeps *whole designs*: every (design, binding, pixel format,
frame size, capacity) combination is expanded into a grid, each point is
simulated end-to-end through the event-driven simulator, verified against
its golden model, and characterised for area/clock/power — with memoization
so a repeated point costs nothing.

Run with:  python examples/batch_sweep.py
"""

from repro.explore import (
    ExplorationRunner,
    best_by,
    comparison_report,
    expand_grid,
)

GRID = dict(
    designs=("saa2vga", "blur"),
    pixel_formats=("gray8", "rgb24"),
    frame_sizes=((16, 10),),
    capacities=(16, 64),
)


def main() -> None:
    points = expand_grid(**GRID)
    print(f"expanded grid: {len(points)} valid design points\n")

    runner = ExplorationRunner()
    results = runner.run(points)
    print(comparison_report(results, title="Batched sweep (event-driven simulation)."))

    assert all(res.verified for res in results), "every point must match its golden model"
    print(f"all {len(results)} points verified against their golden models")

    # A second pass over the same grid is served entirely from the memo.
    runner.run(points)
    print(f"re-run of the same grid: {runner.cache_hits} memo hits, "
          f"{runner.evaluations} total simulations\n")

    cheapest = best_by(results, lambda res: res.luts + res.ffs + 384 * res.brams)
    fastest = best_by(results, lambda res: res.throughput, lowest=False)
    print(f"cheapest point: {cheapest.point.label()} "
          f"({cheapest.luts} LUTs, {cheapest.ffs} FFs)")
    print(f"fastest point:  {fastest.point.label()} "
          f"({fastest.throughput:.2f} pixels/cycle)")

    # Sweeps can also run a constrained-random verification session per
    # point (repro.verify): the report then carries functional coverage
    # alongside the synth estimates.
    checked = ExplorationRunner(verify=True, verify_cycles=1200)
    verified = checked.run(points[:2])
    print()
    print(comparison_report(verified,
                            title="Same sweep with constrained-random "
                                  "verification (verify=True)."))
    assert all(res.coverage_violations == 0 for res in verified)

    print("\nThe sweep mechanises the paper's Section 3.4 exploration: "
          "one grid call replaces\nhand-building each configuration, and the "
          "FIFO-vs-SRAM trade-off emerges directly\nfrom the table above.")


if __name__ == "__main__":
    main()
