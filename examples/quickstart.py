#!/usr/bin/env python3
"""Quickstart: build a tiny pattern-based pipeline and run it.

The example follows the paper's recipe end to end in a few lines:

1. pick containers from the basic component library and a *binding* (the
   physical device they are implemented over);
2. attach iterators — the only view algorithms ever get of a container;
3. instantiate a generic algorithm (here: the stream copy);
4. simulate, and estimate FPGA resources for the elaborated design.

Run with:  python examples/quickstart.py
"""

from repro.core import CopyAlgorithm, make_container, make_iterator
from repro.rtl import Component, Simulator
from repro.synth import estimate_design
from repro.testing import stream_feed_and_drain


def build_pipeline(binding: str) -> Component:
    """read_buffer --(iterator)--> copy --(iterator)--> write_buffer."""
    top = Component(f"quickstart_{binding}")

    # 1. Containers: what the data lives in (the binding decides the device).
    rbuffer = top.child(make_container("read_buffer", binding, "rbuffer",
                                       width=8, capacity=16))
    wbuffer = top.child(make_container("write_buffer", binding, "wbuffer",
                                       width=8, capacity=16))

    # 2. Iterators: how algorithms traverse the containers (Table 2 interface).
    rbuffer_it = top.child(make_iterator(rbuffer, "forward", readable=True,
                                         name="rbuffer_it"))
    wbuffer_it = top.child(make_iterator(wbuffer, "forward", writable=True,
                                         name="wbuffer_it"))

    # 3. The algorithm only ever sees the iterators.
    top.child(CopyAlgorithm("copy", rbuffer_it, wbuffer_it))

    # Expose the environment-facing interfaces for the test bench.
    top.input_fill = rbuffer.fill
    top.output_drain = wbuffer.drain
    return top


def main() -> None:
    data = list(range(32))
    for binding in ("fifo", "sram"):
        top = build_pipeline(binding)
        sim = Simulator(top)

        # 4a. Simulate: feed a burst of elements in, collect what comes out.
        received = stream_feed_and_drain(sim, top.input_fill, top.output_drain,
                                         data)
        assert received == data, "the copy must be bit-exact"

        # 4b. Estimate FPGA resources for the very same elaborated model.
        report = estimate_design(top)
        row = report.row()
        print(f"[{binding:4s}] copied {len(received)} elements in {sim.cycles} "
              f"cycles ({len(received) / sim.cycles:.2f} elems/cycle) | "
              f"estimate: {row['FFs']} FFs, {row['LUTs']} LUTs, "
              f"{row['blockRAM']} BRAM, {row['clk_MHz']:.0f} MHz")

    print("\nSame model, two bindings: only the container implementation "
          "changed; the algorithm and iterators were reused untouched.")


if __name__ == "__main__":
    main()
