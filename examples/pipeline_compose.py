#!/usr/bin/env python3
"""Composing multi-stage streaming systems with ``repro.flow``.

Three scenarios, each built declaratively from the same building blocks the
single-design examples use:

1. **blur + histogram tap** — the blurred stream is broadcast to the video
   output and to a statistics stage (histogram over a vector container);
2. **dual-path copy** — the stream alternates over two parallel copy
   designs and is recollected in order, bit-exact;
3. **24-bit RGB over an 8-bit shared bus** — the elaborator inserts the
   width converters automatically; the scenario declares none.

Each pipeline is simulated end to end, checked against its golden model,
and characterised through the synthesis estimator (aggregate area over
every node, channel and adapter).

Run with:  python examples/pipeline_compose.py
"""

from repro.designs import (
    build_blur_histogram_pipeline,
    build_dual_path_saa2vga,
    build_rgb_over_bus_pipeline,
    run_stream_through,
)
from repro.synth import estimate_design
from repro.video import flatten, golden_blur3x3, random_frame

WIDTH, HEIGHT = 24, 12


def banner(title: str) -> None:
    print(f"\n=== {title} " + "=" * max(0, 60 - len(title)))


def characterise(pipeline) -> None:
    report = estimate_design(pipeline)
    info = pipeline.describe()
    print(f"  topology     {len(info['nodes'])} nodes, "
          f"{info['channels']} elastic channels, "
          f"{info['auto_adapters']} auto-inserted adapters")
    print(f"  estimated    {report.total.ffs} FFs, "
          f"{report.total.total_luts} LUTs, {report.total.brams} blockRAM, "
          f"{report.fmax_mhz:.1f} MHz")


def demo_blur_histogram() -> None:
    banner("blur -> fork -> (output, histogram)")
    frame = random_frame(WIDTH, HEIGHT, seed=101)
    blurred = flatten(golden_blur3x3(frame))
    pipeline = build_blur_histogram_pipeline(line_width=WIDTH)
    result = run_stream_through(pipeline, frame,
                                expected_outputs=len(blurred),
                                max_cycles=500_000)
    ok = result["pixels"] == blurred
    print(f"  blurred      {result['outputs']} pixels in {result['cycles']} "
          f"cycles [{'OK' if ok else 'MISMATCH'}]")
    hist = pipeline.find("hist")
    result["simulator"].run_until(
        lambda: hist.samples_counted >= len(blurred), 200_000)
    counts_ok = hist.counts() == hist.expected_counts(blurred)
    print(f"  histogram    {hist.samples_counted} samples, "
          f"bins={hist.counts()} [{'OK' if counts_ok else 'MISMATCH'}]")
    characterise(pipeline)


def demo_dual_path() -> None:
    banner("round-robin split -> two copy paths -> merge")
    frame = random_frame(WIDTH, HEIGHT, seed=102)
    pipeline = build_dual_path_saa2vga()
    result = run_stream_through(pipeline, frame)
    ok = result["pixels"] == flatten(frame)
    print(f"  round-trip   {result['outputs']} pixels in {result['cycles']} "
          f"cycles, {result['throughput']:.2f} pixels/cycle "
          f"[{'BIT-EXACT' if ok else 'MISMATCH'}]")
    a = pipeline.find("path_a").pixels_processed
    b = pipeline.find("path_b").pixels_processed
    print(f"  path load    path_a={a} path_b={b} (element-fair split)")
    characterise(pipeline)


def demo_rgb_over_bus() -> None:
    banner("24-bit RGB over an 8-bit shared bus (auto adapters)")
    frame = random_frame(16, 8, seed=103, max_value=(1 << 24) - 1)
    pipeline = build_rgb_over_bus_pipeline()
    result = run_stream_through(pipeline, frame)
    ok = result["pixels"] == flatten(frame)
    plans = pipeline.adaptation_plans()
    print(f"  adapters     {[type(a).__name__ for a in pipeline.adapters]} "
          f"({plans[0].beats} beats per pixel) — inserted by the elaborator")
    print(f"  round-trip   {result['outputs']} pixels in {result['cycles']} "
          f"cycles [{'BIT-EXACT' if ok else 'MISMATCH'}]")
    characterise(pipeline)


def main() -> None:
    print("Pipeline composition with repro.flow")
    demo_blur_histogram()
    demo_dual_path()
    demo_rgb_over_bus()
    print("\nSweep these topologies from the shell:")
    print("  python -m repro.explore --pipelines chain dualpath rgbbus "
          "--stages 1 2 4 --fifo-depths 2 8")


if __name__ == "__main__":
    main()
