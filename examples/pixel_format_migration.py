#!/usr/bin/env python3
"""The pixel-format migration scenario of Section 3.3.

The system was designed for 8-bit grayscale pixels; marketing now wants
24-bit RGB.  The paper gives two alternatives, both handled without touching
the model:

* **Alternative 1 — 24-bit data bus**: regenerate the containers/iterators
  with the 24-bit pixel as the base type.
* **Alternative 2 — 8-bit data bus**: keep the 8-bit elements and let the
  generated adaptation logic perform "three consecutive container
  reads/writes to get/set the whole pixel".

This example runs both alternatives in simulation on the same RGB frame,
verifies the outputs are identical and bit-exact, and reports the throughput
cost of the narrow-bus alternative.

Run with:  python examples/pixel_format_migration.py
"""

from repro.core import CopyAlgorithm, make_container, make_iterator
from repro.metagen import WidthDownConverter, WidthUpConverter
from repro.rtl import Component, Simulator
from repro.testing import stream_feed_and_drain
from repro.video import flatten, gradient_frame, gray_to_rgb24

WIDTH, HEIGHT = 24, 8


def rgb_stream():
    return [gray_to_rgb24(p) for p in flatten(gradient_frame(WIDTH, HEIGHT))]


def alternative_1(pixels):
    """Regenerate the pipeline with a 24-bit base type."""
    top = Component("alt1")
    rb = top.child(make_container("read_buffer", "fifo", "rb", width=24, capacity=32))
    wb = top.child(make_container("write_buffer", "fifo", "wb", width=24, capacity=32))
    rit = top.child(make_iterator(rb, "forward", readable=True, name="rit"))
    wit = top.child(make_iterator(wb, "forward", writable=True, name="wit"))
    top.child(CopyAlgorithm("copy", rit, wit))
    sim = Simulator(top)
    received = stream_feed_and_drain(sim, rb.fill, wb.drain, pixels)
    return received, sim.cycles


def alternative_2(pixels):
    """Keep the 8-bit pipeline; adapt 24-bit pixels at the boundaries."""
    top = Component("alt2")
    rb = top.child(make_container("read_buffer", "fifo", "rb", width=8, capacity=32))
    wb = top.child(make_container("write_buffer", "fifo", "wb", width=8, capacity=32))
    rit = top.child(make_iterator(rb, "forward", readable=True, name="rit"))
    wit = top.child(make_iterator(wb, "forward", writable=True, name="wit"))
    top.child(CopyAlgorithm("copy", rit, wit))
    down = top.child(WidthDownConverter("down", element_width=24, bus_width=8))
    up = top.child(WidthUpConverter("up", element_width=24, bus_width=8))

    @top.comb
    def connect():
        rb.fill.data.next = down.narrow_out.data.value
        transfer_in = down.narrow_out.valid.value and rb.fill.ready.value
        rb.fill.push.next = 1 if transfer_in else 0
        down.narrow_out.pop.next = 1 if transfer_in else 0
        up.narrow_in.data.next = wb.drain.data.value
        transfer_out = wb.drain.valid.value and up.narrow_in.ready.value
        up.narrow_in.push.next = 1 if transfer_out else 0
        wb.drain.pop.next = 1 if transfer_out else 0

    sim = Simulator(top)
    received = stream_feed_and_drain(sim, down.wide_in, up.wide_out, pixels,
                                     max_cycles=400_000)
    return received, sim.cycles


def main() -> None:
    pixels = rgb_stream()
    print(f"migrating {len(pixels)} pixels from gray8 to rgb24\n")

    out1, cycles1 = alternative_1(pixels)
    print(f"alternative 1 (24-bit bus): {cycles1:5d} cycles, "
          f"{cycles1 / len(pixels):.2f} cycles/pixel, "
          f"{'bit-exact' if out1 == pixels else 'MISMATCH'}")

    out2, cycles2 = alternative_2(pixels)
    print(f"alternative 2 (8-bit bus):  {cycles2:5d} cycles, "
          f"{cycles2 / len(pixels):.2f} cycles/pixel, "
          f"{'bit-exact' if out2 == pixels else 'MISMATCH'}")

    print(f"\nnarrow-bus cost factor: x{cycles2 / cycles1:.2f} "
          f"(three transfers per pixel, as predicted in Section 3.3)")
    assert out1 == out2 == pixels


if __name__ == "__main__":
    main()
