#!/usr/bin/env python3
"""The saa2vga example of the paper (Figure 1 / Figure 3), end to end.

Builds the full system — synthetic video decoder, the pattern-based image
processing circuit, synthetic VGA coder — runs a frame through both bindings
(on-chip FIFOs and external SRAM), verifies the output against the golden
model, and prints the resource comparison against the hand-written baselines
(the reproduced Table 3 rows ``saa2vga 1`` and ``saa2vga 2``).

Run with:  python examples/saa2vga_pipeline.py
"""

from repro.designs import (
    Saa2VgaCustomFIFO,
    Saa2VgaCustomSRAM,
    build_saa2vga_pattern,
    run_stream_through,
)
from repro.synth import DesignComparison, estimate_design, table3
from repro.video import frames_equal, gradient_frame, unflatten

WIDTH, HEIGHT = 32, 16


def run_functional(binding: str) -> None:
    frame = gradient_frame(WIDTH, HEIGHT)
    design = build_saa2vga_pattern(binding, capacity=32)
    print(f"model of the design ({binding} binding):")
    for key, value in design.describe().items():
        print(f"  {key:12s} {value}")
    result = run_stream_through(design, frame)
    output = unflatten(result["pixels"], WIDTH)
    status = "OK" if frames_equal(output, frame) else "MISMATCH"
    print(f"  simulated    {result['cycles']} cycles for {result['outputs']} "
          f"pixels -> {result['throughput']:.2f} pixels/cycle [{status}]")
    print()


def print_table3_rows() -> None:
    comparisons = [
        DesignComparison(
            "saa2vga 1",
            estimate_design(build_saa2vga_pattern("fifo", capacity=512)),
            estimate_design(Saa2VgaCustomFIFO(capacity=512))),
        DesignComparison(
            "saa2vga 2",
            estimate_design(build_saa2vga_pattern("sram", capacity=512)),
            estimate_design(Saa2VgaCustomSRAM(capacity=512))),
    ]
    print(table3(comparisons))
    print("(cells are pattern/custom, as in the paper)")


def main() -> None:
    print("=== saa2vga: stream copy from video decoder to VGA coder ===\n")
    run_functional("fifo")
    run_functional("sram")
    print("=== resource comparison against the ad-hoc implementations ===\n")
    print_table3_rows()


if __name__ == "__main__":
    main()
