"""Unit tests for the 3-line buffer used by the blur design."""

import pytest

from repro.primitives import LineBuffer3
from repro.rtl import Simulator
from repro.video import random_frame


def make(line_width=6, width=8):
    lb = LineBuffer3("lb", line_width=line_width, width=width)
    return lb, Simulator(lb)


def push_pixel(sim, lb, value):
    """Push one pixel and return the column presented during that cycle."""
    lb.din.force(value)
    lb.push.force(1)
    sim.settle()
    column = (lb.col_top.value, lb.col_mid.value, lb.col_bot.value)
    valid = lb.window_valid.value
    sim.step()
    lb.push.force(0)
    return column, valid


def test_window_not_valid_during_first_two_lines():
    lb, sim = make(line_width=4)
    for pixel in range(8):  # two full lines
        _column, valid = push_pixel(sim, lb, pixel)
        assert valid == 0
    assert lb.lines_filled == 2


def test_columns_match_image_neighbourhood():
    width, height = 6, 5
    frame = random_frame(width, height, seed=21)
    lb, sim = make(line_width=width)
    for y in range(height):
        for x in range(width):
            column, valid = push_pixel(sim, lb, frame[y][x])
            if y >= 2:
                assert valid == 1
                assert column == (frame[y - 2][x], frame[y - 1][x], frame[y][x])
            else:
                assert valid == 0


def test_line_history_contents():
    lb, sim = make(line_width=4)
    for pixel in range(8):
        push_pixel(sim, lb, pixel)
    assert lb.line_history(0) == [0, 1, 2, 3]
    assert lb.line_history(1) == [4, 5, 6, 7]
    with pytest.raises(ValueError):
        lb.line_history(2)


def test_x_counter_wraps_per_line():
    lb, sim = make(line_width=3)
    positions = []
    for pixel in range(7):
        positions.append(lb.x.value)
        push_pixel(sim, lb, pixel)
    assert positions == [0, 1, 2, 0, 1, 2, 0]


def test_no_push_no_advance():
    lb, sim = make(line_width=4)
    sim.step(5)
    assert lb.total_pushed == 0
    assert lb.lines_filled == 0


def test_invalid_line_width():
    with pytest.raises(ValueError):
        LineBuffer3("bad", line_width=1, width=8)
