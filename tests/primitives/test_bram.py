"""Unit tests for the single- and dual-port block RAM models."""

import pytest

from repro.primitives import DualPortRAM, SinglePortRAM
from repro.rtl import Simulator


class TestSinglePortRAM:
    def make(self, depth=16, width=8, init=None):
        ram = SinglePortRAM("ram", depth=depth, width=width, init=init)
        return ram, Simulator(ram)

    def test_write_then_registered_read(self):
        ram, sim = self.make()
        ram.en.force(1)
        ram.we.force(1)
        ram.addr.force(3)
        ram.din.force(0x77)
        sim.step()
        ram.we.force(0)
        ram.addr.force(3)
        sim.step()
        # Registered output: data appears the cycle after the read access.
        assert ram.dout.value == 0x77

    def test_disabled_port_does_nothing(self):
        ram, sim = self.make()
        ram.en.force(0)
        ram.we.force(1)
        ram.addr.force(1)
        ram.din.force(5)
        sim.step(2)
        assert ram.read_word(1) == 0

    def test_write_first_behaviour(self):
        ram, sim = self.make()
        ram.en.force(1)
        ram.we.force(1)
        ram.addr.force(2)
        ram.din.force(9)
        sim.step()
        assert ram.dout.value == 9  # the written word is also registered out

    def test_init_and_backdoor(self):
        ram, _sim = self.make(init=[1, 2, 3])
        assert ram.dump(0, 3) == [1, 2, 3]
        ram.write_word(5, 42)
        assert ram.read_word(5) == 42
        ram.load([7, 8], offset=10)
        assert ram.dump(10, 2) == [7, 8]

    def test_invalid_depth(self):
        with pytest.raises(ValueError):
            SinglePortRAM("bad", depth=1, width=8)


class TestDualPortRAM:
    def make(self, depth=16, width=8):
        ram = DualPortRAM("ram", depth=depth, width=width)
        return ram, Simulator(ram)

    def test_independent_ports(self):
        ram, sim = self.make()
        ram.wen.force(1)
        ram.waddr.force(4)
        ram.wdata.force(0x3C)
        sim.step()
        ram.wen.force(0)
        ram.ren.force(1)
        ram.raddr.force(4)
        sim.step()
        assert ram.rdata.value == 0x3C

    def test_simultaneous_write_and_read_different_addresses(self):
        ram, sim = self.make()
        ram.write_word(7, 0x11)
        ram.wen.force(1)
        ram.waddr.force(2)
        ram.wdata.force(0x22)
        ram.ren.force(1)
        ram.raddr.force(7)
        sim.step()
        assert ram.rdata.value == 0x11
        assert ram.read_word(2) == 0x22

    def test_read_port_holds_last_value_when_disabled(self):
        ram, sim = self.make()
        ram.write_word(1, 0x55)
        ram.ren.force(1)
        ram.raddr.force(1)
        sim.step()
        ram.ren.force(0)
        ram.raddr.force(0)
        sim.step(2)
        assert ram.rdata.value == 0x55

    def test_invalid_depth(self):
        with pytest.raises(ValueError):
            DualPortRAM("bad", depth=1, width=8)
