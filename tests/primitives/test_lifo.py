"""Unit and property tests for the synchronous LIFO core."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.primitives import SyncLIFO
from repro.rtl import Simulator


def make(depth=8, width=8):
    lifo = SyncLIFO("lifo", depth=depth, width=width)
    return lifo, Simulator(lifo)


def push(sim, lifo, value):
    lifo.din.force(value)
    lifo.push.force(1)
    sim.step()
    lifo.push.force(0)


def pop(sim, lifo):
    value = lifo.dout.value
    lifo.pop.force(1)
    sim.step()
    lifo.pop.force(0)
    return value


def test_reset_state_is_empty():
    lifo, _sim = make()
    assert lifo.empty.value == 1
    assert lifo.full.value == 0


def test_last_in_first_out_order():
    lifo, sim = make()
    for value in [1, 2, 3]:
        push(sim, lifo, value)
    assert lifo.contents() == [1, 2, 3]
    assert lifo.peek() == 3
    assert [pop(sim, lifo) for _ in range(3)] == [3, 2, 1]


def test_full_blocks_push():
    lifo, sim = make(depth=2)
    push(sim, lifo, 1)
    push(sim, lifo, 2)
    assert lifo.full.value == 1
    push(sim, lifo, 3)
    assert lifo.contents() == [1, 2]


def test_pop_on_empty_ignored():
    lifo, sim = make()
    lifo.pop.force(1)
    sim.step(2)
    lifo.pop.force(0)
    assert lifo.empty.value == 1
    assert lifo.total_popped == 0


def test_simultaneous_push_pop_replaces_top():
    lifo, sim = make()
    push(sim, lifo, 7)
    lifo.din.force(9)
    lifo.push.force(1)
    lifo.pop.force(1)
    sim.step()
    lifo.push.force(0)
    lifo.pop.force(0)
    assert lifo.occupancy == 1
    assert lifo.peek() == 9


def test_invalid_depth_rejected():
    with pytest.raises(ValueError):
        SyncLIFO("bad", depth=1, width=8)


@settings(max_examples=40, deadline=None)
@given(ops=st.lists(st.tuples(st.sampled_from(["push", "pop", "idle"]),
                              st.integers(min_value=0, max_value=255)),
                    min_size=1, max_size=100),
       depth=st.sampled_from([2, 4, 8]))
def test_lifo_matches_reference_model(ops, depth):
    """Random push/pop sequences behave exactly like a bounded Python list."""
    lifo = SyncLIFO("lifo", depth=depth, width=8)
    sim = Simulator(lifo)
    model = []
    for op, value in ops:
        if op == "push":
            will_push = len(model) < depth
            push(sim, lifo, value)
            if will_push:
                model.append(value)
        elif op == "pop":
            will_pop = bool(model)
            expected = model[-1] if will_pop else None
            actual = pop(sim, lifo)
            if will_pop:
                assert actual == expected
                model.pop()
        else:
            sim.step()
        assert lifo.occupancy == len(model)
        assert lifo.contents() == model
