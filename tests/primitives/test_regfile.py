"""Unit tests for the register file and the content-addressable memory."""

import pytest

from repro.primitives import ContentAddressableMemory, RegisterFile
from repro.rtl import Simulator


class TestRegisterFile:
    def make(self, depth=8, width=8):
        regs = RegisterFile("regs", depth=depth, width=width)
        return regs, Simulator(regs)

    def test_write_then_combinational_read(self):
        regs, sim = self.make()
        regs.wen.force(1)
        regs.waddr.force(2)
        regs.wdata.force(0x42)
        sim.step()
        regs.wen.force(0)
        regs.raddr.force(2)
        sim.settle()
        assert regs.rdata.value == 0x42

    def test_write_disabled(self):
        regs, sim = self.make()
        regs.wen.force(0)
        regs.waddr.force(1)
        regs.wdata.force(9)
        sim.step(2)
        assert regs.read_word(1) == 0

    def test_backdoor_and_dump(self):
        regs, _sim = self.make(depth=4)
        regs.write_word(3, 7)
        assert regs.read_word(3) == 7
        assert regs.dump() == [0, 0, 0, 7]

    def test_register_storage_counts_as_flip_flops(self):
        regs, _sim = self.make(depth=4, width=8)
        assert regs.state_bits() == 32

    def test_invalid_depth(self):
        with pytest.raises(ValueError):
            RegisterFile("bad", depth=1, width=8)


class TestContentAddressableMemory:
    def make(self, depth=4, key_width=8, value_width=8):
        cam = ContentAddressableMemory("cam", depth=depth, key_width=key_width,
                                       value_width=value_width)
        return cam, Simulator(cam)

    def insert(self, sim, cam, key, value):
        cam.insert_key.force(key)
        cam.insert_value.force(value)
        cam.insert.force(1)
        sim.step()
        cam.insert.force(0)

    def test_insert_and_lookup(self):
        cam, sim = self.make()
        self.insert(sim, cam, 0x10, 0xAA)
        self.insert(sim, cam, 0x20, 0xBB)
        cam.lookup_key.force(0x20)
        sim.settle()
        assert cam.hit.value == 1
        assert cam.hit_value.value == 0xBB
        cam.lookup_key.force(0x30)
        sim.settle()
        assert cam.hit.value == 0

    def test_insert_existing_key_updates_value(self):
        cam, sim = self.make()
        self.insert(sim, cam, 5, 1)
        self.insert(sim, cam, 5, 2)
        assert cam.entries() == {5: 2}
        assert cam.occupancy == 1

    def test_remove(self):
        cam, sim = self.make()
        self.insert(sim, cam, 1, 10)
        self.insert(sim, cam, 2, 20)
        cam.remove_key.force(1)
        cam.remove.force(1)
        sim.step()
        cam.remove.force(0)
        assert cam.entries() == {2: 20}

    def test_full_flag_and_capacity(self):
        cam, sim = self.make(depth=2)
        self.insert(sim, cam, 1, 1)
        self.insert(sim, cam, 2, 2)
        sim.settle()
        assert cam.full.value == 1
        # A third distinct key cannot be allocated.
        self.insert(sim, cam, 3, 3)
        assert cam.occupancy == 2
        assert 3 not in cam.entries()

    def test_count_output(self):
        cam, sim = self.make()
        self.insert(sim, cam, 9, 9)
        sim.settle()
        assert cam.count.value == 1

    def test_invalid_depth(self):
        with pytest.raises(ValueError):
            ContentAddressableMemory("bad", depth=0, key_width=8, value_width=8)
