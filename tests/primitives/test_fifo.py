"""Unit and property tests for the synchronous FIFO core."""

from collections import deque

import pytest
from hypothesis import given, settings, strategies as st

from repro.primitives import SyncFIFO
from repro.rtl import Simulator


def make(depth=8, width=8):
    fifo = SyncFIFO("fifo", depth=depth, width=width)
    return fifo, Simulator(fifo)


def push(sim, fifo, value):
    fifo.din.force(value)
    fifo.push.force(1)
    sim.step()
    fifo.push.force(0)


def pop(sim, fifo):
    value = fifo.dout.value
    fifo.pop.force(1)
    sim.step()
    fifo.pop.force(0)
    return value


def test_reset_state_is_empty():
    fifo, _sim = make()
    assert fifo.empty.value == 1
    assert fifo.full.value == 0
    assert fifo.count.value == 0
    assert fifo.occupancy == 0


def test_push_then_pop_preserves_order():
    fifo, sim = make()
    for value in [10, 20, 30]:
        push(sim, fifo, value)
    assert fifo.count.value == 3
    assert fifo.contents() == [10, 20, 30]
    assert [pop(sim, fifo) for _ in range(3)] == [10, 20, 30]
    assert fifo.empty.value == 1


def test_first_word_fall_through():
    fifo, sim = make()
    push(sim, fifo, 0x55)
    assert fifo.empty.value == 0
    assert fifo.dout.value == 0x55  # visible without popping
    assert fifo.peek() == 0x55


def test_full_blocks_push():
    fifo, sim = make(depth=2)
    push(sim, fifo, 1)
    push(sim, fifo, 2)
    assert fifo.full.value == 1
    push(sim, fifo, 3)  # must be ignored
    assert fifo.count.value == 2
    assert fifo.contents() == [1, 2]


def test_pop_on_empty_is_ignored():
    fifo, sim = make()
    fifo.pop.force(1)
    sim.step(3)
    fifo.pop.force(0)
    assert fifo.empty.value == 1
    assert fifo.total_popped == 0


def test_simultaneous_push_pop_keeps_occupancy():
    fifo, sim = make()
    push(sim, fifo, 1)
    fifo.din.force(2)
    fifo.push.force(1)
    fifo.pop.force(1)
    sim.step()
    fifo.push.force(0)
    fifo.pop.force(0)
    assert fifo.count.value == 1
    assert fifo.contents() == [2]


def test_pointer_wraparound():
    fifo, sim = make(depth=4)
    for round_index in range(3):
        for i in range(4):
            push(sim, fifo, round_index * 4 + i)
        values = [pop(sim, fifo) for _ in range(4)]
        assert values == [round_index * 4 + i for i in range(4)]


def test_width_masks_data():
    fifo, sim = make(width=4)
    push(sim, fifo, 0xFF)
    assert pop(sim, fifo) == 0xF


def test_invalid_depth_rejected():
    with pytest.raises(ValueError):
        SyncFIFO("bad", depth=1, width=8)


def test_statistics_counters():
    fifo, sim = make()
    push(sim, fifo, 1)
    push(sim, fifo, 2)
    pop(sim, fifo)
    assert fifo.total_pushed == 2
    assert fifo.total_popped == 1


@settings(max_examples=40, deadline=None)
@given(ops=st.lists(st.tuples(st.sampled_from(["push", "pop", "both", "idle"]),
                              st.integers(min_value=0, max_value=255)),
                    min_size=1, max_size=120),
       depth=st.sampled_from([2, 4, 8, 16]))
def test_fifo_matches_reference_model(ops, depth):
    """Random operation sequences behave exactly like a bounded deque."""
    fifo = SyncFIFO("fifo", depth=depth, width=8)
    sim = Simulator(fifo)
    model = deque()
    for op, value in ops:
        do_push = op in ("push", "both")
        do_pop = op in ("pop", "both")
        fifo.din.force(value)
        fifo.push.force(1 if do_push else 0)
        fifo.pop.force(1 if do_pop else 0)
        # Mirror the hardware's decision using the *pre-edge* status.
        will_push = do_push and len(model) < depth
        will_pop = do_pop and len(model) > 0
        popped_expected = model[0] if will_pop else None
        popped_actual = fifo.dout.value if will_pop else None
        sim.step()
        if will_pop:
            model.popleft()
            assert popped_actual == popped_expected
        if will_push:
            model.append(value)
        assert fifo.occupancy == len(model)
        assert list(fifo.contents()) == list(model)
    fifo.push.force(0)
    fifo.pop.force(0)
