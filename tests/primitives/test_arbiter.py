"""Unit tests for the fixed-priority and round-robin arbiters."""

import pytest

from repro.primitives import PriorityArbiter, RoundRobinArbiter
from repro.rtl import Simulator


class TestPriorityArbiter:
    def make(self, n=3):
        arb = PriorityArbiter("arb", n)
        return arb, Simulator(arb)

    def test_idle_when_no_requests(self):
        arb, sim = self.make()
        sim.settle()
        assert arb.busy.value == 0
        assert arb.granted() == -1

    def test_lowest_index_wins(self):
        arb, sim = self.make()
        arb.requests[1].force(1)
        arb.requests[2].force(1)
        sim.settle()
        assert arb.granted() == 1
        arb.requests[0].force(1)
        sim.settle()
        assert arb.granted() == 0
        assert arb.grant_index.value == 0

    def test_single_grant_one_hot(self):
        arb, sim = self.make()
        for req in arb.requests:
            req.force(1)
        sim.settle()
        assert sum(g.value for g in arb.grants) == 1

    def test_invalid_size(self):
        with pytest.raises(ValueError):
            PriorityArbiter("bad", 0)


class TestRoundRobinArbiter:
    def make(self, n=3):
        arb = RoundRobinArbiter("arb", n)
        return arb, Simulator(arb)

    def test_grant_holds_while_request_persists(self):
        arb, sim = self.make()
        arb.requests[0].force(1)
        arb.requests[1].force(1)
        sim.settle()
        first = arb.granted()
        sim.step(3)
        assert arb.granted() == first

    def test_rotation_after_release(self):
        arb, sim = self.make(n=2)
        # Client 0 wins first.
        arb.requests[0].force(1)
        arb.requests[1].force(1)
        sim.settle()
        assert arb.granted() == 0
        sim.step()
        # Client 0 releases; client 1 must now be granted.
        arb.requests[0].force(0)
        sim.step()
        assert arb.granted() == 1
        # Client 0 requests again: client 1 keeps the grant until it releases.
        arb.requests[0].force(1)
        sim.step()
        assert arb.granted() == 1
        arb.requests[1].force(0)
        sim.step()
        assert arb.granted() == 0

    def test_fair_sharing_over_many_rounds(self):
        arb, sim = self.make(n=3)
        grants = {0: 0, 1: 0, 2: 0}
        for req in arb.requests:
            req.force(1)
        sim.settle()
        for _ in range(60):
            winner = arb.granted()
            grants[winner] += 1
            # The winner releases for one cycle so the pointer rotates.
            arb.requests[winner].force(0)
            sim.step()
            arb.requests[winner].force(1)
            sim.step()
        counts = sorted(grants.values())
        assert counts[-1] - counts[0] <= 2, f"unfair grant distribution: {grants}"

    def test_idle_when_no_requests(self):
        arb, sim = self.make()
        sim.step(2)
        assert arb.busy.value == 0
        assert arb.granted() == -1

    def test_invalid_size(self):
        with pytest.raises(ValueError):
            RoundRobinArbiter("bad", 0)
