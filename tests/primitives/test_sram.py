"""Unit tests for the external asynchronous SRAM model and its req/ack handshake."""

import pytest

from repro.primitives import AsyncSRAM
from repro.rtl import Simulator


def make(depth=32, width=8, latency=2):
    sram = AsyncSRAM("sram", depth=depth, width=width, latency=latency)
    return sram, Simulator(sram)


def access(sim, sram, addr, write=False, value=0, max_cycles=50):
    """Drive one full req/ack transaction and return (read_data, cycles_to_ack)."""
    sram.addr.force(addr)
    sram.we.force(1 if write else 0)
    sram.wdata.force(value)
    sram.req.force(1)
    cycles = 0
    while not sram.ack.value:
        sim.step()
        cycles += 1
        assert cycles <= max_cycles, "SRAM never acknowledged"
    data = sram.rdata.value
    sram.req.force(0)
    while sram.ack.value:
        sim.step()
    return data, cycles


def test_write_then_read_back():
    sram, sim = make()
    access(sim, sram, 5, write=True, value=0xA5)
    assert sram.read_word(5) == 0xA5
    data, _ = access(sim, sram, 5)
    assert data == 0xA5


def test_latency_matches_parameter():
    for latency in (1, 2, 4):
        sram = AsyncSRAM("sram", depth=16, width=8, latency=latency)
        sim = Simulator(sram)
        _, cycles = access(sim, sram, 0)
        assert cycles == latency


def test_ack_clears_after_req_drops():
    sram, sim = make(latency=1)
    sram.addr.force(1)
    sram.req.force(1)
    sim.step(2)
    assert sram.ack.value == 1
    sim.step(3)
    assert sram.ack.value == 1, "ack must hold while req is high"
    sram.req.force(0)
    sim.step(2)
    assert sram.ack.value == 0


def test_back_to_back_transactions():
    sram, sim = make()
    for i in range(8):
        access(sim, sram, i, write=True, value=i * 3)
    for i in range(8):
        data, _ = access(sim, sram, i)
        assert data == (i * 3) & 0xFF


def test_backdoor_load_and_dump():
    sram, _sim = make()
    sram.load([1, 2, 3], offset=4)
    assert sram.dump(4, 3) == [1, 2, 3]
    sram.write_word(0, 99)
    assert sram.read_word(0) == 99


def test_statistics_counters():
    sram, sim = make()
    access(sim, sram, 0, write=True, value=1)
    access(sim, sram, 0)
    access(sim, sram, 0)
    assert sram.total_writes == 1
    assert sram.total_reads == 2


def test_is_external_for_the_estimator():
    sram, _sim = make()
    assert sram.external is True


def test_invalid_parameters_rejected():
    with pytest.raises(ValueError):
        AsyncSRAM("bad", depth=1, width=8)
    with pytest.raises(ValueError):
        AsyncSRAM("bad", depth=8, width=8, latency=0)
