"""Store interplay: a warm re-search performs zero simulations.

The evaluator's three-level lookup (memo -> :class:`ResultStore` ->
lockstep matrix) shares the exact ``verify_key`` identity the verify CLI
and the sweep service use, so a second search over a warm store must
replay every proposal — provable both with ``repro.rtl.instrument``
simulation counters and the ``search_store_hits`` metric.
"""

import pytest

from repro.obs.metrics import REGISTRY
from repro.rtl import instrument
from repro.search.driver import CoverageSearch, SearchConfig
from repro.search.state import SessionEvaluator, resolved_cycles
from repro.serve.records import verify_key
from repro.serve.store import ResultStore

CONFIG = dict(targets=("queue/fifo",), budget=4, cycles=120, seed=0)


@pytest.fixture()
def store(tmp_path):
    return ResultStore(tmp_path / "store")


def test_warm_store_research_performs_zero_simulations(store):
    cold = CoverageSearch(SearchConfig(**CONFIG), store=store)
    cold_report = cold.run()
    assert cold_report.closed and cold_report.simulated > 0

    before_sims = instrument.snapshot()
    before_hits = REGISTRY.counters().get("search_store_hits", 0)
    warm = CoverageSearch(SearchConfig(**CONFIG), store=store)
    warm_report = warm.run()

    assert instrument.simulations_since(before_sims) == 0
    assert warm_report.simulated == 0
    assert warm_report.store_hits == warm_report.sessions > 0
    assert (REGISTRY.counters()["search_store_hits"] - before_hits
            == warm_report.store_hits)
    # Same closure, same trajectory — only the session source changed.
    assert warm_report.seed_trajectory() == cold_report.seed_trajectory()
    assert warm_report.coverage == cold_report.coverage
    sources = [p["source"] for entry in warm_report.rounds
               for p in entry["proposals"]]
    assert set(sources) == {"store"}


def test_repeat_proposals_within_one_search_hit_the_memo():
    evaluator = SessionEvaluator(cycles=120)
    first = evaluator.evaluate("queue/fifo", [0, 1])
    again = evaluator.evaluate("queue/fifo", [1, 0])
    assert [source for _, _, source in first] == ["sim", "sim"]
    assert [source for _, _, source in again] == ["memo", "memo"]
    assert evaluator.simulated == 2 and evaluator.memo_hits == 2
    # Identical records regardless of source.
    assert dict((s, r) for s, r, _ in first)[0] == \
        dict((s, r) for s, r, _ in again)[0]


def test_evaluator_keys_match_the_verify_cli_identity(store):
    evaluator = SessionEvaluator(cycles=120, store=store)
    evaluator.evaluate("queue/fifo", [0])
    key = verify_key("queue/fifo", 0,
                     resolved_cycles("queue/fifo", 120), "compiled-batched")
    assert evaluator.key("queue/fifo", 0) == key
    record = store.get(key)
    assert record is not None and record["result"]["ok"]


def test_failing_sessions_are_never_persisted(tmp_path):
    from repro.verify import mutate

    store = ResultStore(tmp_path / "store")
    evaluator = SessionEvaluator(cycles=800, store=store)
    with mutate.inject("fifo.stale_dout"):
        results = evaluator.evaluate("queue/fifo", [0])
    assert not results[0][1]["result"]["ok"]
    assert store.get(evaluator.key("queue/fifo", 0)) is None
