"""Seed and design-point proposers: operators, fallbacks, determinism."""

import random

import pytest

from repro.explore.grid import DesignPoint, expand_grid
from repro.search.propose import DesignProposer, SeedProposer


# -- SeedProposer ----------------------------------------------------------

def test_scan_enumerates_untried_integers_in_order():
    proposer = SeedProposer("queue/fifo", random.Random(0), epsilon=0.0)
    assert [seed for seed, _ in proposer.propose_batch(4)] == [0, 1, 2, 3]


def test_proposals_are_never_repeated():
    proposer = SeedProposer("queue/fifo", random.Random(3), epsilon=1.0)
    for seed, op in proposer.propose_batch(6):
        proposer.update(seed, op, gain=1)
    seeds = proposer.proposed
    assert len(seeds) == len(set(seeds)) == 6


def test_mutate_and_cross_need_gaining_parents():
    proposer = SeedProposer("queue/fifo", random.Random(0))
    assert proposer.available_ops() == ["scan"]
    proposer.update(5, "scan", gain=2)
    assert proposer.available_ops() == ["scan", "mutate"]
    proposer.update(9, "scan", gain=1)
    assert proposer.available_ops() == ["scan", "mutate", "cross"]
    # Zero-gain seeds never become parents.
    proposer.update(7, "scan", gain=0)
    assert 7 not in proposer._gaining()
    # Best gain first; the XOR mutation perturbs that parent.
    assert proposer._gaining()[0] == 5


def test_epsilon_zero_sticks_to_scan():
    """With the scan prior and no exploration, mutate/cross never get a
    free simulation — the property that keeps the fewer-evals win."""
    proposer = SeedProposer("queue/fifo", random.Random(0), epsilon=0.0)
    for _ in range(6):
        seed, op = proposer.propose()
        assert op == "scan"
        proposer.update(seed, op, gain=1)


def test_duplicate_from_operator_falls_back_to_scan():
    proposer = SeedProposer("queue/fifo", random.Random(0), epsilon=0.0)
    # Force the mutate path directly: make its output collide.
    proposer.update(0, "scan", gain=3)
    proposer._proposed_set.update(range(0, 256))
    proposer.proposed.extend(range(0, 256))
    mutated = proposer._mutate()
    assert mutated in proposer._proposed_set  # parent ^ [1..255] < 256
    seed, op = proposer.propose()
    assert op == "scan" and seed == 256


def test_same_rng_seed_reproduces_the_trajectory():
    def run():
        proposer = SeedProposer("queue/fifo", random.Random(42), epsilon=0.5)
        out = []
        for _ in range(8):
            seed, op = proposer.propose()
            proposer.update(seed, op, gain=seed % 3)
            out.append((seed, op))
        return out
    assert run() == run()


# -- DesignProposer --------------------------------------------------------

def make_design_proposer(seed=0, epsilon=0.0, **kwargs):
    return DesignProposer(random.Random(seed), epsilon=epsilon, **kwargs)


def test_scan_walks_the_expand_grid_order():
    proposer = make_design_proposer()
    expected = expand_grid(designs=("saa2vga", "blur"),
                           pixel_formats=("gray8",),
                           frame_sizes=((8, 8), (16, 12)),
                           capacities=(4, 8, 16))
    walked = []
    while True:
        proposal = proposer.propose()
        if proposal is None:
            break
        walked.append(proposal[0])
    assert walked == expected
    assert proposer.propose() is None  # stays exhausted


def test_mutate_changes_exactly_one_axis_neighbourhood():
    proposer = make_design_proposer(seed=1)
    point, op = proposer.propose()
    proposer.update(point, op, accepted=True)
    child = proposer._mutate()
    assert child is not None and child.key() != point.key()
    diffs = sum((
        child.design != point.design,
        child.binding != point.binding,
        child.pixel_format != point.pixel_format,
        (child.frame_width, child.frame_height)
        != (point.frame_width, point.frame_height),
        child.capacity != point.capacity,
    ))
    # One axis re-drawn — except a design change, which may legitimately
    # drag binding/format along to the new family's supported sets.
    assert diffs == 1 or child.design != point.design


def test_cross_recombines_two_distinct_parents():
    proposer = make_design_proposer(seed=2)
    a = DesignPoint("saa2vga", "fifo", "gray8", 8, 8, 4)
    b = DesignPoint("saa2vga", "sram", "gray8", 16, 12, 16)
    proposer.update(a, "scan", accepted=True)
    proposer.update(b, "scan", accepted=True)
    # A draw may pick the same parent twice (-> None); retry like
    # propose() does, bounded by MAX_ATTEMPTS.
    child = next(filter(None, (proposer._cross()
                               for _ in range(proposer.MAX_ATTEMPTS))), None)
    assert child is not None
    assert child.design == "saa2vga"
    assert child.binding in ("fifo", "sram")
    assert (child.frame_width, child.frame_height) in ((8, 8), (16, 12))
    assert child.capacity in (4, 16)


def test_cross_needs_two_distinct_parents():
    proposer = make_design_proposer()
    assert proposer._cross() is None
    point = DesignPoint("saa2vga", "fifo", "gray8", 8, 8, 4)
    proposer.update(point, "scan", accepted=True)
    proposer.update(point, "scan", accepted=True)  # same key twice
    assert proposer._cross() is None


def test_proposals_are_valid_and_unique():
    proposer = make_design_proposer(seed=5, epsilon=1.0)
    seen = set()
    while True:
        proposal = proposer.propose()
        if proposal is None:
            break
        point, op = proposal
        assert point.key() not in seen
        seen.add(point.key())
        proposer.update(point, op, accepted=bool(len(seen) % 2))
    # Exactly the reachable grid, regardless of operator detours.
    assert len(seen) == len(expand_grid(designs=("saa2vga", "blur"),
                                        pixel_formats=("gray8",),
                                        frame_sizes=((8, 8), (16, 12)),
                                        capacities=(4, 8, 16)))


def test_restricted_bindings_are_respected():
    proposer = make_design_proposer(designs=("saa2vga",),
                                    bindings=("fifo",))
    while True:
        proposal = proposer.propose()
        if proposal is None:
            break
        assert proposal[0].binding == "fifo"


@pytest.mark.parametrize("seed", [0, 7, 23])
def test_design_trajectory_is_deterministic(seed):
    def run():
        proposer = make_design_proposer(seed=seed, epsilon=0.5)
        labels = []
        for accept in (True, False, True, True, False, True):
            proposal = proposer.propose()
            if proposal is None:
                break
            point, op = proposal
            proposer.update(point, op, accepted=accept)
            labels.append((point.label(), op))
        return labels
    assert run() == run()
