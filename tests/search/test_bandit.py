"""Epsilon-greedy bandit: selection policy, priors, determinism."""

import random

import pytest

from repro.search.bandit import BanditError, EpsilonGreedy


def make(epsilon=0.0, seed=0, **kwargs):
    return EpsilonGreedy(("a", "b", "c"), epsilon=epsilon,
                         rng=random.Random(seed), **kwargs)


def test_arms_are_deduplicated_and_sorted():
    bandit = EpsilonGreedy(("c", "a", "b", "a"), rng=random.Random(0))
    assert bandit.arms == ["a", "b", "c"]


def test_rejects_empty_arms_and_bad_epsilon():
    with pytest.raises(BanditError):
        EpsilonGreedy((), rng=random.Random(0))
    with pytest.raises(BanditError):
        EpsilonGreedy(("a",), epsilon=1.5, rng=random.Random(0))


def test_untried_arms_are_tried_first_in_sorted_order():
    bandit = make(epsilon=0.0)
    first = []
    for _ in range(3):
        arm = bandit.select()
        bandit.update(arm, 0.0)
        first.append(arm)
    assert first == ["a", "b", "c"]


def test_greedy_follows_mean_reward():
    bandit = make(epsilon=0.0)
    bandit.update("a", 0.0)
    bandit.update("b", 5.0)
    bandit.update("c", 1.0)
    assert bandit.select() == "b"
    bandit.update("b", -20.0)   # mean drops below c's
    assert bandit.select() == "c"


def test_ties_break_on_first_sorted_arm():
    bandit = make(epsilon=0.0)
    for arm in ("a", "b", "c"):
        bandit.update(arm, 1.0)
    # Equal means -> max() keeps the first of the sorted arms, every time.
    assert all(bandit.select() == "a" for _ in range(5))


def test_prior_pseudo_counts_seed_the_incumbent():
    bandit = make(epsilon=0.0, explore_untried=False,
                  prior={"b": (1, 1.0)})
    # b starts with mean 1.0; a and c at 0 pulls mean 0.0 and, with
    # explore_untried off, are never force-tried.
    assert all(bandit.select() == "b" for _ in range(5))
    bandit.update("c", 3.0)
    assert bandit.select() == "c"


def test_epsilon_one_explores_uniformly_but_deterministically():
    def draws():
        bandit = make(epsilon=1.0, seed=7, explore_untried=False)
        picked = []
        for _ in range(10):
            arm = bandit.select()
            bandit.update(arm, 0.0)
            picked.append(arm)
        return picked
    first, second = draws(), draws()
    assert first == second                # same seed -> same draws
    assert len(set(first)) > 1            # and it actually explores


def test_select_restricted_to_available_subset():
    bandit = make(epsilon=0.0)
    bandit.update("a", 9.0)
    assert bandit.select(available=("b", "c")) in ("b", "c")
    with pytest.raises(BanditError):
        bandit.select(available=("a", "zz"))
    with pytest.raises(BanditError):
        bandit.select(available=())


def test_update_rejects_unknown_arm():
    bandit = make()
    with pytest.raises(BanditError):
        bandit.update("zz", 1.0)


def test_snapshot_rounds_and_reports_every_arm():
    bandit = make(epsilon=0.0)
    bandit.update("a", 1.0)
    bandit.update("a", 2.0)
    snap = bandit.snapshot()
    assert set(snap) == {"a", "b", "c"}
    assert snap["a"] == {"pulls": 2, "reward": 3.0, "mean": 1.5}
    assert snap["b"]["pulls"] == 0
