"""Coverage-directed search driver: closure, budget, the fewer-evals win.

The acceptance pair is ``queue/fifo`` + ``queue/sram`` at 120 cycles:
empirically the fifo target closes with seeds ``[0, 1]`` and the sram
target needs ``[0..5]``, so the feedback-free rectangular baseline must
ship a 6-seed matrix to *both* targets (12 sessions) while the search
spends per-target budget only while coverage is open (8 sessions).
"""

from types import SimpleNamespace

import pytest

from repro.explore.grid import DesignPoint
from repro.search.driver import (
    CoverageSearch,
    ParetoFrontier,
    SearchConfig,
    grid_baseline,
    propose_seeds,
    run_search,
)

ACCEPTANCE_TARGETS = ("queue/fifo", "queue/sram")
ACCEPTANCE_CYCLES = 120


@pytest.fixture(scope="module")
def acceptance():
    """One shared acceptance run: search then the grid baseline, priced
    off the same evaluator (already-searched sessions replay from the
    memo, so the whole module costs ~8 simulations)."""
    config = SearchConfig(targets=ACCEPTANCE_TARGETS, budget=20,
                          cycles=ACCEPTANCE_CYCLES, seed=0)
    search = CoverageSearch(config)
    report = search.run()
    baseline = grid_baseline(config, evaluator=search.evaluator)
    return config, search, report, baseline


# -- config validation -----------------------------------------------------

def test_config_rejects_bad_inputs():
    with pytest.raises(ValueError):
        SearchConfig(targets=())
    with pytest.raises(ValueError):
        SearchConfig(targets=("no/such/target",))
    with pytest.raises(ValueError):
        SearchConfig(targets=("queue/fifo",), budget=0)
    with pytest.raises(ValueError):
        SearchConfig(targets=("queue/fifo",), batch=0)


def test_config_to_dict_resolves_per_target_cycles():
    config = SearchConfig(targets=("queue/fifo",), cycles=None)
    data = config.to_dict()
    assert data["cycles"]["queue/fifo"] > 0


# -- closure and budget ----------------------------------------------------

def test_search_closes_both_acceptance_targets(acceptance):
    _, _, report, _ = acceptance
    assert report.closed and report.ok
    assert report.coverage["queue/fifo"] == pytest.approx(100.0)
    assert report.coverage["queue/sram"] == pytest.approx(100.0)
    assert report.unhit == []
    assert report.violations == []


def test_search_spends_budget_only_while_coverage_is_open(acceptance):
    _, _, report, _ = acceptance
    assert report.sessions == 8
    assert report.seed_trajectory("queue/fifo") == [0, 1]
    assert report.seed_trajectory("queue/sram") == [0, 1, 2, 3, 4, 5]


def test_search_beats_the_rectangular_grid_baseline(acceptance):
    """The acceptance criterion: 100% closure on >= 2 registered targets
    in strictly fewer evaluations than grid x seed enumeration."""
    _, _, report, baseline = acceptance
    assert baseline["closed"]
    assert baseline["matrix_seeds"] == 6         # worst target: queue/sram
    assert baseline["sessions"] == 12            # 2 targets x 6 seeds
    assert report.closed
    assert report.sessions < baseline["sessions"]


def test_grid_baseline_prices_per_target_closure(acceptance):
    _, _, _, baseline = acceptance
    per = baseline["per_target"]
    assert per["queue/fifo"]["seeds"] == 2
    assert per["queue/sram"]["seeds"] == 6
    assert all(info["closed"] and info["coverage"] == pytest.approx(100.0)
               for info in per.values())


def test_budget_exhaustion_reports_open_goals():
    config = SearchConfig(targets=("queue/sram",), budget=2,
                          cycles=ACCEPTANCE_CYCLES)
    report = run_search(config)
    assert report.sessions == 2
    assert not report.closed and not report.ok
    assert report.unhit                          # names what stayed open
    assert 0.0 < report.coverage["queue/sram"] < 100.0


def test_report_json_carries_format_and_trajectory(acceptance):
    _, _, report, _ = acceptance
    data = report.to_dict()
    assert data["format"] == "repro-search-v1"
    assert data["sessions"] == 8
    assert len(data["rounds"]) == 8              # batch=1: one each
    for entry in data["rounds"]:
        assert entry["target"] in ACCEPTANCE_TARGETS
        for proposal in entry["proposals"]:
            assert proposal["source"] in ("sim", "memo", "store")
            assert proposal["ok"] is True
    assert "targets" in data["bandits"]
    assert report.summary().startswith("search: 8 session(s)")


def test_every_target_bandit_gets_a_fair_first_trial(acceptance):
    _, _, report, _ = acceptance
    pulls = {t: stats["pulls"]
             for t, stats in report.bandits["targets"].items()}
    assert all(pulls[t] > 0 for t in ACCEPTANCE_TARGETS)


def test_warm_state_search_performs_no_sessions(acceptance):
    """Re-searching with the already-closed coverage DB as warm fitness
    state finds nothing open and spends nothing."""
    config, search, _, _ = acceptance
    warm = CoverageSearch(config, evaluator=search.evaluator,
                          state=search.state)
    report = warm.run()
    assert report.sessions == 0
    assert report.closed


# -- the seed-proposal API -------------------------------------------------

def test_propose_seeds_returns_exactly_count_distinct_seeds():
    seeds = propose_seeds("queue/fifo", 4, cycles=ACCEPTANCE_CYCLES)
    assert len(seeds) == len(set(seeds)) == 4
    # Closure stops the real search after [0, 1]; scan-padding tops up.
    assert seeds == [0, 1, 2, 3]
    with pytest.raises(ValueError):
        propose_seeds("queue/fifo", 0)


# -- Pareto frontier (pure, no simulation) ---------------------------------

def fake_result(throughput, luts, ffs, capacity=4):
    return SimpleNamespace(
        point=DesignPoint("saa2vga", "fifo", "gray8", 8, 8, capacity),
        throughput=throughput, luts=luts, ffs=ffs, brams=0,
        fmax_mhz=100.0, power_mw=1.0)


def test_frontier_keeps_non_dominated_points_only():
    frontier = ParetoFrontier()
    assert frontier.consider(fake_result(1.0, 100, 50, capacity=4))
    # Strictly better on both objectives: evicts the first.
    assert frontier.consider(fake_result(2.0, 80, 40, capacity=8))
    assert len(frontier) == 1
    # Dominated (slower and larger): rejected.
    assert not frontier.consider(fake_result(1.5, 90, 45, capacity=16))
    # Trade-off (slower but smaller): joins.
    assert frontier.consider(fake_result(1.5, 30, 20, capacity=32))
    assert len(frontier) == 2


def test_frontier_entries_sorted_fastest_first():
    frontier = ParetoFrontier()
    frontier.consider(fake_result(1.0, 30, 20, capacity=4))
    frontier.consider(fake_result(2.0, 80, 40, capacity=8))
    labels = [entry["throughput"] for entry in frontier.entries()]
    assert labels == [2.0, 1.0]
    assert frontier.entries()[0]["area"] == 120


def test_equal_fitness_does_not_evict():
    frontier = ParetoFrontier()
    assert frontier.consider(fake_result(1.0, 50, 50, capacity=4))
    assert frontier.consider(fake_result(1.0, 60, 40, capacity=8))
    assert len(frontier) == 2
