"""``python -m repro.search`` CLI: exit codes, artifacts, --compare-grid."""

import json

import pytest

from repro.search.__main__ import build_parser, main

ACCEPTANCE = ["queue/fifo", "queue/sram", "--cycles", "120",
              "--budget", "20", "--min-coverage", "100"]


def test_list_names_registered_targets(capsys):
    assert main(["--list"]) == 0
    out = capsys.readouterr().out
    assert "queue/fifo" in out and "default_cycles" in out


def test_no_targets_and_no_frontier_is_a_usage_error(capsys):
    with pytest.raises(SystemExit) as exc:
        main([])
    assert exc.value.code == 2


def test_unknown_target_exits_2(capsys):
    assert main(["no/such/target"]) == 2
    assert "no/such/target" in capsys.readouterr().err


def test_acceptance_run_closes_and_beats_the_grid(capsys, tmp_path):
    report_path = tmp_path / "report.json"
    coverage_path = tmp_path / "coverage.json"
    status = main(ACCEPTANCE + ["--compare-grid",
                                "--json", str(report_path),
                                "--json-coverage", str(coverage_path)])
    out = capsys.readouterr().out
    assert status == 0
    assert "closed=yes" in out
    assert "grid baseline: 12 session(s)" in out and "search used 8" in out

    report = json.loads(report_path.read_text())
    assert report["format"] == "repro-search-v1"
    assert report["closed"] is True and report["sessions"] == 8

    coverage = json.loads(coverage_path.read_text())
    assert coverage["format"] == "repro-coverage-v1"
    assert set(coverage["groups"]) == {"queue/fifo", "queue/sram"}


def test_budget_too_small_exits_1_and_names_unhit_goals(capsys):
    status = main(["queue/sram", "--cycles", "120", "--budget", "2"])
    assert status == 1
    err = capsys.readouterr().err
    assert "FAILED" in err and "unhit:" in err


def test_state_dir_round_trips_warm_coverage(tmp_path, capsys):
    state = tmp_path / "state"
    assert main(["queue/fifo", "--cycles", "120", "--budget", "4",
                 "--state", str(state), "--quiet"]) == 0
    saved = json.loads((state / "coverage.json").read_text())
    assert "queue/fifo" in saved["groups"]
    # Second run resumes from closure: zero sessions spent.
    assert main(["queue/fifo", "--cycles", "120", "--budget", "4",
                 "--state", str(state)]) == 0
    assert "search: 0 session(s)" in capsys.readouterr().out


def test_frontier_mode_writes_the_artifact(tmp_path, capsys):
    frontier_path = tmp_path / "frontier.json"
    status = main(["--frontier-budget", "3", "--designs", "saa2vga",
                   "--capacities", "4", "8", "--quiet",
                   "--json-frontier", str(frontier_path)])
    assert status == 0
    frontier = json.loads(frontier_path.read_text())
    assert frontier["format"] == "repro-frontier-v1"
    assert frontier["evaluations"] == 3
    assert frontier["frontier"]                  # something non-dominated


def test_bad_frame_spec_is_rejected():
    with pytest.raises(SystemExit):
        main(["--frontier", "--frontier-budget", "1", "--frames", "wide"])


def test_parser_exposes_the_documented_flags():
    text = build_parser().format_help()
    for flag in ("--budget", "--cycles", "--seed", "--strategy", "--batch",
                 "--epsilon", "--min-coverage", "--compare-grid",
                 "--frontier", "--frontier-budget", "--designs",
                 "--bindings", "--formats", "--frames", "--capacities",
                 "--store", "--state", "--json", "--json-coverage",
                 "--json-frontier", "--quiet", "--trace", "--profile"):
        assert flag in text, flag
