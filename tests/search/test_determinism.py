"""Determinism regression: one root seed, one byte-identical trajectory.

Every stochastic choice in the search flows from ``RngPool(config.seed)``
named streams, every tie breaks on a total order, and the report JSON
carries no timestamps — so the same ``REPRO_SEED`` + budget must
reproduce the proposal trajectory and every artifact byte for byte:
within a process, across fresh processes (fork-pool workers), and for
the design-axes frontier JSON too.
"""

import multiprocessing

import pytest

from repro.search.driver import SearchConfig, design_search, run_search

CYCLES = 120


def search_json(seed):
    """Worker body: run one small search, return its report JSON."""
    config = SearchConfig(targets=("queue/fifo",), budget=3, cycles=CYCLES,
                          seed=seed)
    return run_search(config).to_json()


def frontier_json(seed):
    """Worker body: run one tiny design search, return the frontier JSON."""
    return design_search(budget=3, seed=seed, designs=("saa2vga",),
                         capacities=(4, 8)).to_json()


def test_same_seed_same_report_bytes_in_process():
    assert search_json(0) == search_json(0)


def test_different_root_seeds_may_diverge_but_stay_self_consistent():
    # Not asserting divergence (epsilon draws can coincide on tiny
    # budgets) — only that each seed is individually reproducible.
    for seed in (1, 7):
        assert search_json(seed) == search_json(seed)


def test_frontier_json_is_deterministic_in_process():
    assert frontier_json(0) == frontier_json(0)


@pytest.mark.parametrize("body", [search_json, frontier_json],
                         ids=["report", "frontier"])
def test_fork_pool_workers_reproduce_the_exact_bytes(body):
    """Two fork-pool workers and the parent process must agree byte for
    byte — no hash-seed, pid or scheduling dependence anywhere."""
    local = body(0)
    ctx = multiprocessing.get_context("fork")
    with ctx.Pool(processes=2) as pool:
        remote = pool.map(body, [0, 0])
    assert remote[0] == remote[1] == local


def test_trajectory_is_stable_against_report_reordering():
    """The seed trajectory (the part CI diffs) specifically."""
    config = SearchConfig(targets=("queue/fifo", "queue/sram"), budget=20,
                          cycles=CYCLES, seed=0)
    first = run_search(config)
    second = run_search(config)
    assert first.seed_trajectory() == second.seed_trajectory()
    assert first.to_json() == second.to_json()
