"""Tests for frame generation and the golden image operators."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.video import (
    checkerboard_frame,
    flatten,
    frame_dimensions,
    frames_equal,
    golden_blur3x3,
    golden_copy,
    golden_map,
    golden_sum,
    gradient_frame,
    random_frame,
    unflatten,
)


class TestGenerators:
    def test_gradient_dimensions_and_range(self):
        frame = gradient_frame(8, 6)
        assert frame_dimensions(frame) == (8, 6)
        values = flatten(frame)
        assert min(values) == 0
        assert max(values) == 255
        # Monotone along each row.
        for row in frame:
            assert row == sorted(row)

    def test_checkerboard_alternates(self):
        frame = checkerboard_frame(8, 8, tile=2, low=0, high=255)
        assert frame[0][0] == 0
        assert frame[0][2] == 255
        assert frame[2][0] == 255
        assert frame[2][2] == 0

    def test_random_frame_is_deterministic_per_seed(self):
        assert random_frame(6, 4, seed=5) == random_frame(6, 4, seed=5)
        assert random_frame(6, 4, seed=5) != random_frame(6, 4, seed=6)

    def test_random_frame_respects_max_value(self):
        frame = random_frame(10, 10, seed=1, max_value=15)
        assert max(flatten(frame)) <= 15


class TestReshaping:
    def test_flatten_unflatten_roundtrip(self):
        frame = random_frame(5, 3, seed=2)
        assert unflatten(flatten(frame), 5) == frame

    def test_unflatten_rejects_ragged_input(self):
        with pytest.raises(ValueError):
            unflatten([1, 2, 3], 2)
        with pytest.raises(ValueError):
            unflatten([1, 2, 3, 4], 0)

    def test_frame_dimensions_rejects_ragged_frames(self):
        with pytest.raises(ValueError):
            frame_dimensions([[1, 2], [3]])
        with pytest.raises(ValueError):
            frame_dimensions([])


class TestGoldenModels:
    def test_copy_is_identity_and_a_fresh_object(self):
        frame = random_frame(4, 4, seed=3)
        out = golden_copy(frame)
        assert frames_equal(out, frame)
        out[0][0] ^= 0xFF
        assert not frames_equal(out, frame)

    def test_map_applies_function(self):
        frame = [[1, 2], [3, 4]]
        assert golden_map(frame, lambda p: p * 2) == [[2, 4], [6, 8]]

    def test_sum(self):
        assert golden_sum([[1, 2], [3, 4]]) == 10

    def test_blur_uniform_frame_is_uniform(self):
        frame = [[100] * 5 for _ in range(5)]
        assert golden_blur3x3(frame) == [[100] * 3 for _ in range(3)]

    def test_blur_output_geometry(self):
        frame = random_frame(10, 7, seed=4)
        blurred = golden_blur3x3(frame)
        assert frame_dimensions(blurred) == (8, 5)

    def test_blur_rejects_small_frames(self):
        with pytest.raises(ValueError):
            golden_blur3x3([[1, 2], [3, 4]])

    def test_blur_known_value(self):
        frame = [[0, 0, 0], [0, 90, 0], [0, 0, 0]]
        assert golden_blur3x3(frame) == [[10]]


@settings(max_examples=25, deadline=None)
@given(width=st.integers(min_value=3, max_value=12),
       height=st.integers(min_value=3, max_value=12),
       seed=st.integers(min_value=0, max_value=1000))
def test_property_blur_output_bounded_by_input_range(width, height, seed):
    frame = random_frame(width, height, seed=seed)
    flat = flatten(frame)
    low, high = min(flat), max(flat)
    for row in golden_blur3x3(frame):
        for pixel in row:
            assert low - 1 <= pixel <= high
