"""Tests for pixel formats, packing and bus-width splitting."""

import pytest
from hypothesis import given, strategies as st

from repro.video import (
    GRAY8,
    RGB24,
    RGB565,
    gray_to_rgb24,
    join_word,
    rgb24_to_gray,
    split_word,
)


class TestFormats:
    def test_widths(self):
        assert GRAY8.width == 8
        assert RGB24.width == 24
        assert RGB565.width == 16 or RGB565.width == 15  # 3 x 5-bit channels packed
        assert RGB24.max_value == 0xFFFFFF

    def test_pack_unpack_rgb24(self):
        word = RGB24.pack((0x12, 0x34, 0x56))
        assert word == 0x123456
        assert RGB24.unpack(word) == (0x12, 0x34, 0x56)

    def test_pack_masks_channel_overflow(self):
        assert GRAY8.pack((0x1FF,)) == 0xFF

    def test_pack_wrong_arity(self):
        with pytest.raises(ValueError):
            RGB24.pack((1, 2))

    def test_gray_rgb_conversions(self):
        assert gray_to_rgb24(0x80) == 0x808080
        assert rgb24_to_gray(0x808080) == 0x80
        assert rgb24_to_gray(RGB24.pack((30, 60, 90))) == 60


class TestSplitting:
    def test_split_word_24_over_8(self):
        assert split_word(0xABCDEF, 24, 8) == [0xAB, 0xCD, 0xEF]

    def test_join_word(self):
        assert join_word([0xAB, 0xCD, 0xEF], 8) == 0xABCDEF

    def test_split_requires_divisible_widths(self):
        with pytest.raises(ValueError):
            split_word(0, 24, 7)


@given(r=st.integers(min_value=0, max_value=255),
       g=st.integers(min_value=0, max_value=255),
       b=st.integers(min_value=0, max_value=255))
def test_property_rgb_pack_unpack_roundtrip(r, g, b):
    assert RGB24.unpack(RGB24.pack((r, g, b))) == (r, g, b)


@given(word=st.integers(min_value=0, max_value=0xFFFFFF),
       bus=st.sampled_from([1, 2, 4, 8, 12, 24]))
def test_property_split_join_roundtrip(word, bus):
    assert join_word(split_word(word, 24, bus), bus) == word


@given(gray=st.integers(min_value=0, max_value=255))
def test_property_gray_roundtrip_through_rgb(gray):
    assert rgb24_to_gray(gray_to_rgb24(gray)) == gray
