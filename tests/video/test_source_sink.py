"""Tests for the synthetic video stream source and sink."""

from repro.core import make_container
from repro.rtl import Component, Simulator
from repro.video import VideoStreamSink, VideoStreamSource, flatten, random_frame


def build(frames=None, source_stall=0, sink_stall=0, capacity=8):
    """Source -> read buffer -> (drain directly via its source iface) -> sink."""
    top = Component("top")
    rb = top.child(make_container("read_buffer", "fifo", "rb", width=8,
                                  capacity=capacity))
    source = top.child(VideoStreamSource("src", rb.fill, frames=frames,
                                         stall_period=source_stall))
    sink = top.child(VideoStreamSink("snk", rb.source, stall_period=sink_stall))
    return top, rb, source, sink, Simulator(top)


def test_source_sends_all_pixels_in_raster_order():
    frame = random_frame(6, 4, seed=1)
    _top, _rb, source, sink, sim = build(frames=[frame])
    sim.run_until(lambda: sink.count == 24, 2_000)
    assert source.exhausted
    assert sink.received == flatten(frame)
    assert source.pixels_sent.value == 24
    assert sink.pixels_received.value == 24


def test_multiple_frames_are_sent_back_to_back():
    frame_a = random_frame(4, 2, seed=2)
    frame_b = random_frame(4, 2, seed=3)
    _top, _rb, source, sink, sim = build(frames=[frame_a, frame_b])
    sim.run_until(lambda: sink.count == 16, 2_000)
    assert sink.received == flatten(frame_a) + flatten(frame_b)
    assert source.total_pixels == 16


def test_source_respects_backpressure():
    frame = random_frame(8, 4, seed=4)
    top = Component("top")
    rb = top.child(make_container("read_buffer", "fifo", "rb", width=8, capacity=4))
    source = top.child(VideoStreamSource("src", rb.fill, frames=[frame]))
    sim = Simulator(top)
    sim.step(200)
    # Nothing drains the buffer, so the source must stop after filling it.
    assert rb.occupancy == 4
    assert not source.exhausted
    assert source.pixels_sent.value == 4


def test_source_stall_slows_the_stream_without_losing_pixels():
    frame = random_frame(5, 3, seed=5)
    _top, _rb, _source, sink, sim = build(frames=[frame], source_stall=3)
    sim.run_until(lambda: sink.count == 15, 5_000)
    assert sink.received == flatten(frame)
    # With a stall of 3 the steady-state rate is one pixel per 4 cycles.
    assert sim.cycles >= 14 * 4


def test_sink_stall_applies_backpressure_without_losing_pixels():
    frame = random_frame(5, 3, seed=6)
    _top, _rb, _source, sink, sim = build(frames=[frame], sink_stall=2)
    sim.run_until(lambda: sink.count == 15, 5_000)
    assert sink.received == flatten(frame)
    assert sim.cycles >= 14 * 3


def test_sink_frame_reassembly_and_clear():
    frame = random_frame(4, 3, seed=7)
    _top, _rb, _source, sink, sim = build(frames=[frame])
    sim.run_until(lambda: sink.count == 12, 2_000)
    assert sink.frame(4, 3) == frame
    sink.clear()
    assert sink.count == 0


def test_sink_frame_requires_enough_pixels():
    import pytest

    _top, _rb, _source, sink, _sim = build(frames=[random_frame(2, 2, seed=8)])
    with pytest.raises(ValueError):
        sink.frame(4, 4)


def test_queue_pixels_and_queue_frame_extend_the_stream():
    _top, _rb, source, sink, sim = build(frames=None)
    source.queue_pixels([1, 2, 3])
    source.queue_frame([[4, 5], [6, 7]])
    sim.run_until(lambda: sink.count == 7, 2_000)
    assert sink.received == [1, 2, 3, 4, 5, 6, 7]
