"""Covergroups: bins, crosses, merging, JSON round-trip."""

import pytest

from repro.verify.coverage import CoverageDB, CoverageError, CoverGroup


def make_group():
    group = CoverGroup("g")
    group.point("op", {"push": "push", "pop": "pop"})
    group.point("occ", {"empty": 0, "mid": (1, 3), "full": 4,
                        "odd": lambda v: isinstance(v, int) and v % 2 == 1})
    group.cross("op_x_occ", ("op", "occ"), [("push", "empty"),
                                            ("pop", "full")])
    return group


def test_bins_match_exact_range_and_predicate():
    group = make_group()
    group.sample(op="push", occ=0)
    group.sample(op="pop", occ=2)
    occ = group.points["occ"]
    assert occ.bins["empty"].hits == 1
    assert occ.bins["mid"].hits == 1
    assert occ.bins["full"].hits == 0
    assert occ.unhit() == ["full", "odd"]


def test_cross_fires_only_on_declared_combos_sampled_together():
    group = make_group()
    group.sample(op="push", occ=0)      # declared combo
    group.sample(op="push", occ=4)      # undeclared combo -> ignored
    group.sample(op="pop")              # occ missing -> no cross sample
    cross = group.crosses["op_x_occ"]
    assert cross.combos[("push", "empty")] == 1
    assert cross.combos[("pop", "full")] == 0


def test_percent_and_unhit_track_points_and_crosses():
    group = make_group()
    assert group.percent == 0.0
    group.sample(op="push", occ=0)
    # 6 bins + 2 combos = 8 goals; hit: push, empty, (push x empty) = 3.
    assert group.goal_count == 8
    assert group.hit_count == 3
    assert group.percent == pytest.approx(100.0 * 3 / 8)
    assert "g.op_x_occ.popxfull" in group.unhit()


def test_merge_dict_accumulates_and_rejects_mismatches():
    a, b = make_group(), make_group()
    a.sample(op="push", occ=0)
    b.sample(op="push", occ=4)
    a.merge_dict(b.to_dict())
    assert a.points["op"].bins["push"].hits == 2
    assert a.points["occ"].bins["full"].hits == 1
    with pytest.raises(CoverageError):
        a.merge_dict({"name": "other"})


def test_db_merges_across_runs_and_round_trips_json():
    db = CoverageDB()
    first, second = make_group(), make_group()
    first.sample(op="push", occ=0)
    second.sample(op="pop", occ=4)
    db.add(first)
    db.add(second)
    # Merged: push, pop, empty, full, both combos hit -> 7/8 (odd unhit...
    # occ=0 is even, occ=4 is even, so 'odd' stays unhit; mid unhit too).
    assert db.percent("g") == pytest.approx(100.0 * 6 / 8)
    restored = CoverageDB.from_json(db.to_json())
    assert restored.percent("g") == db.percent("g")
    assert restored.unhit() == db.unhit()
    assert "g.occ.odd" in restored.unhit()


def test_db_report_mentions_unhit_goals():
    db = CoverageDB()
    group = make_group()
    group.sample(op="push", occ=0)
    db.add(group)
    text = db.report()
    assert "g:" in text
    assert "unhit" in text


def test_duplicate_declarations_rejected():
    group = make_group()
    with pytest.raises(CoverageError):
        group.point("op", {"x": 1})
    with pytest.raises(CoverageError):
        group.cross("again", ("op", "missing"), [("push", "x")])
