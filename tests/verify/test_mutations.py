"""Mutation smoke test: every seeded protocol bug must be caught.

Five deliberate bugs hide behind construction-time switches in the
primitives and the queue container (:mod:`repro.verify.mutate`).  For each
one, a constrained-random session on the matching target must flag at
least one violation — and with the switch off, the same session must be
clean.  This is the verification subsystem verifying itself.
"""

import functools

import pytest

from repro.verify import mutate, verify
from repro.verify.session import verify_matrix

#: mutation name -> (target exercising it, cycle budget)
MUTATION_TARGETS = {
    "fifo.drop_full_guard": ("queue/fifo", 800),
    "fifo.pop_empty_guard": ("queue/fifo", 800),
    "fifo.stale_dout": ("queue/fifo", 800),
    "lifo.reverse_order": ("stack/lifo", 800),
    "queue.ready_when_full": ("queue/fifo", 800),
    "batched.cross_lane_mask_reuse": ("queue/fifo", 800),
    "batched.stale_lane_commit": ("queue/fifo", 800),
}

#: The batched-emitter faults live in the *code generator*, not a
#: primitive: they only manifest inside a multi-lane lockstep session
#: (identical lanes would mask cross-lane leakage, and the stale-commit
#: fault freezes exactly the last lane), so their smoke test drives a
#: multi-seed matrix instead of a scalar session.
BATCHED_MUTATIONS = {name for name in MUTATION_TARGETS
                     if name.startswith("batched.")}
BATCHED_SMOKE_SEEDS = [0, 1, 2, 3]


def test_every_known_mutation_has_a_smoke_target():
    assert set(MUTATION_TARGETS) == set(mutate.KNOWN)


@pytest.mark.parametrize("name", sorted(MUTATION_TARGETS))
def test_monitors_catch_seeded_protocol_bug(name):
    target, cycles = MUTATION_TARGETS[name]
    if name in BATCHED_MUTATIONS:
        with mutate.inject(name):
            mutated = verify_matrix(target, BATCHED_SMOKE_SEEDS,
                                    cycles=cycles)
        assert any(not result.ok for result in mutated), \
            f"mutation {name} went undetected on a " \
            f"{len(BATCHED_SMOKE_SEEDS)}-lane {target} matrix"
        clean = verify_matrix(target, BATCHED_SMOKE_SEEDS, cycles=cycles)
        assert all(result.ok for result in clean), \
            [str(v) for result in clean for v in result.violations[:5]]
        return
    with mutate.inject(name):
        mutated = verify(target, seed=0, cycles=cycles)
    assert not mutated.ok, \
        f"mutation {name} went undetected on {target} " \
        f"(reproduce: {mutated.repro_command()})"
    # The switch is construction-time: a fresh DUT built after the context
    # exits behaves correctly again under the identical stimulus.
    clean = verify(target, seed=0, cycles=cycles)
    assert clean.ok, [str(v) for v in clean.violations[:5]]


def test_stale_lane_commit_freezes_exactly_the_last_lane():
    """The seeded commit fault skips the last lane column: earlier lanes
    must stay clean (their columns commit normally), pinning the fault's
    blast radius and proving detection is not an artefact of lane 0."""
    with mutate.inject("batched.stale_lane_commit"):
        results = verify_matrix("queue/fifo", BATCHED_SMOKE_SEEDS,
                                cycles=800)
    assert [result.ok for result in results] == [True, True, True, False]


#: Mutation escape: the exact monitor rules each fault trips when driven
#: by *search-proposed* seeds — the per-fault blast radius.  The sets are
#: deterministic (propose_seeds and the sessions share one root seed), so
#: an escape (fault undetected) or a radius change (fault detected by
#: different monitors) both fail loudly.
SEARCH_BLAST_RADIUS = {
    "fifo.drop_full_guard": {
        "queue/fifo.conservation", "queue/fifo.data-mismatch",
        "queue/fifo.data-stability", "queue/fifo.occupancy-bound",
        "queue/fifo.phantom-valid", "queue/fifo.scoreboard",
        "queue/fifo.valid-drop"},
    "fifo.pop_empty_guard": {
        "queue/fifo.conservation", "queue/fifo.data-mismatch",
        "queue/fifo.occupancy-bound", "queue/fifo.phantom-valid",
        "queue/fifo.scoreboard"},
    "fifo.stale_dout": {
        "queue/fifo.data-mismatch", "queue/fifo.scoreboard"},
    "lifo.reverse_order": {
        "stack/lifo.data-mismatch", "stack/lifo.scoreboard"},
    "queue.ready_when_full": {
        "queue/fifo.conservation", "queue/fifo.data-mismatch",
        "queue/fifo.scoreboard"},
    "batched.cross_lane_mask_reuse": {
        "queue/fifo.data-mismatch", "queue/fifo.data-stability",
        "queue/fifo.scoreboard"},
    "batched.stale_lane_commit": {
        "queue/fifo.conservation", "queue/fifo.scoreboard"},
}


@functools.lru_cache(maxsize=None)
def search_proposed_seeds(target, cycles, count):
    """Seeds a fault-free coverage search spends its budget on (cached:
    one healthy search per (target, cycles, budget) for the module)."""
    from repro.search import propose_seeds

    return tuple(propose_seeds(target, count, cycles=cycles))


@pytest.mark.parametrize("name", sorted(SEARCH_BLAST_RADIUS))
def test_search_proposed_seeds_catch_every_seeded_fault(name):
    """No mutation escapes the search's seed budget.

    The coverage-directed search proposes its seeds against the *healthy*
    design — faults must not get to vote.  Within the same session budget
    the fixed matrix spends (one scalar session, or the 4-lane batched
    matrix), those proposed seeds must still catch every seeded fault,
    and trip exactly the pinned monitor rules."""
    target, cycles = MUTATION_TARGETS[name]
    count = len(BATCHED_SMOKE_SEEDS) if name in BATCHED_MUTATIONS else 1
    seeds = list(search_proposed_seeds(target, cycles, count))
    assert len(seeds) == count
    with mutate.inject(name):
        results = verify_matrix(target, seeds, cycles=cycles)
    assert any(not result.ok for result in results), \
        f"mutation {name} escaped search-proposed seeds {seeds}"
    rules = {violation.rule for result in results
             for violation in result.violations}
    assert rules == SEARCH_BLAST_RADIUS[name]
    # And the same sessions are clean once the switch drops.
    clean = verify_matrix(target, seeds, cycles=cycles)
    assert all(result.ok for result in clean)


def test_mutation_registry_rejects_unknown_names():
    with pytest.raises(ValueError):
        mutate.enable("no.such.mutation")
    assert not mutate.enabled("no.such.mutation")


def test_inject_restores_state_on_exception():
    with pytest.raises(RuntimeError):
        with mutate.inject("fifo.stale_dout"):
            assert mutate.enabled("fifo.stale_dout")
            raise RuntimeError("boom")
    assert not mutate.enabled("fifo.stale_dout")
    assert mutate.active() == set()
