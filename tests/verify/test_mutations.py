"""Mutation smoke test: every seeded protocol bug must be caught.

Five deliberate bugs hide behind construction-time switches in the
primitives and the queue container (:mod:`repro.verify.mutate`).  For each
one, a constrained-random session on the matching target must flag at
least one violation — and with the switch off, the same session must be
clean.  This is the verification subsystem verifying itself.
"""

import pytest

from repro.verify import mutate, verify
from repro.verify.session import verify_matrix

#: mutation name -> (target exercising it, cycle budget)
MUTATION_TARGETS = {
    "fifo.drop_full_guard": ("queue/fifo", 800),
    "fifo.pop_empty_guard": ("queue/fifo", 800),
    "fifo.stale_dout": ("queue/fifo", 800),
    "lifo.reverse_order": ("stack/lifo", 800),
    "queue.ready_when_full": ("queue/fifo", 800),
    "batched.cross_lane_mask_reuse": ("queue/fifo", 800),
    "batched.stale_lane_commit": ("queue/fifo", 800),
}

#: The batched-emitter faults live in the *code generator*, not a
#: primitive: they only manifest inside a multi-lane lockstep session
#: (identical lanes would mask cross-lane leakage, and the stale-commit
#: fault freezes exactly the last lane), so their smoke test drives a
#: multi-seed matrix instead of a scalar session.
BATCHED_MUTATIONS = {name for name in MUTATION_TARGETS
                     if name.startswith("batched.")}
BATCHED_SMOKE_SEEDS = [0, 1, 2, 3]


def test_every_known_mutation_has_a_smoke_target():
    assert set(MUTATION_TARGETS) == set(mutate.KNOWN)


@pytest.mark.parametrize("name", sorted(MUTATION_TARGETS))
def test_monitors_catch_seeded_protocol_bug(name):
    target, cycles = MUTATION_TARGETS[name]
    if name in BATCHED_MUTATIONS:
        with mutate.inject(name):
            mutated = verify_matrix(target, BATCHED_SMOKE_SEEDS,
                                    cycles=cycles)
        assert any(not result.ok for result in mutated), \
            f"mutation {name} went undetected on a " \
            f"{len(BATCHED_SMOKE_SEEDS)}-lane {target} matrix"
        clean = verify_matrix(target, BATCHED_SMOKE_SEEDS, cycles=cycles)
        assert all(result.ok for result in clean), \
            [str(v) for result in clean for v in result.violations[:5]]
        return
    with mutate.inject(name):
        mutated = verify(target, seed=0, cycles=cycles)
    assert not mutated.ok, \
        f"mutation {name} went undetected on {target} " \
        f"(reproduce: {mutated.repro_command()})"
    # The switch is construction-time: a fresh DUT built after the context
    # exits behaves correctly again under the identical stimulus.
    clean = verify(target, seed=0, cycles=cycles)
    assert clean.ok, [str(v) for v in clean.violations[:5]]


def test_stale_lane_commit_freezes_exactly_the_last_lane():
    """The seeded commit fault skips the last lane column: earlier lanes
    must stay clean (their columns commit normally), pinning the fault's
    blast radius and proving detection is not an artefact of lane 0."""
    with mutate.inject("batched.stale_lane_commit"):
        results = verify_matrix("queue/fifo", BATCHED_SMOKE_SEEDS,
                                cycles=800)
    assert [result.ok for result in results] == [True, True, True, False]


def test_mutation_registry_rejects_unknown_names():
    with pytest.raises(ValueError):
        mutate.enable("no.such.mutation")
    assert not mutate.enabled("no.such.mutation")


def test_inject_restores_state_on_exception():
    with pytest.raises(RuntimeError):
        with mutate.inject("fifo.stale_dout"):
            assert mutate.enabled("fifo.stale_dout")
            raise RuntimeError("boom")
    assert not mutate.enabled("fifo.stale_dout")
    assert mutate.active() == set()
