"""Session-level acceptance: coverage closure over every shipped binding.

The headline guarantee of the verification subsystem: every registered
target — *all* shipped container bindings plus the pipeline designs —
reaches 100 % of its declared covergroup goals with zero violations,
within its default cycle budget, from seed 0.
"""

import pytest

from repro.designs import Saa2VgaPatternDesign
from repro.verify import CoverageDB, VerificationError, verify, verify_all
from repro.verify.session import TARGETS, container_targets, design_targets

ALL_BINDINGS = [
    ("read_buffer", "fifo"), ("read_buffer", "sram"),
    ("read_buffer", "linebuffer3"),
    ("write_buffer", "fifo"), ("write_buffer", "sram"),
    ("queue", "fifo"), ("queue", "sram"),
    ("stack", "lifo"), ("stack", "sram"),
    ("vector", "bram"), ("vector", "sram"), ("vector", "registers"),
    ("assoc_array", "cam"),
]


def test_every_shipped_container_binding_has_a_target():
    from repro.core import CONTAINER_BINDINGS

    registered = set(container_targets())
    for kind, binding in CONTAINER_BINDINGS:
        assert f"{kind}/{binding}" in registered, \
            f"shipped binding ({kind}, {binding}) has no verification target"


@pytest.mark.parametrize("name", sorted(TARGETS))
def test_coverage_closure_with_no_violations(name):
    result = verify(name, seed=0)
    assert result.ok, "\n".join(str(v) for v in result.violations[:10])
    assert result.coverage_percent == 100.0, \
        f"unhit coverage goals: {result.coverage.unhit()}"
    assert result.transactions > 0


def test_verify_accepts_ad_hoc_pipeline_components():
    design = Saa2VgaPatternDesign(name="adhoc", binding="fifo", capacity=8)
    result = verify(design, seed=5, cycles=800)
    assert result.target == "component/adhoc"
    assert result.ok
    assert result.transactions > 0


def test_verify_rejects_unknown_targets_and_bare_components():
    with pytest.raises(VerificationError):
        verify("no/such/target")
    with pytest.raises(VerificationError):
        verify(object())


def test_result_reproduction_recipe_names_seed_and_target():
    result = verify("queue/fifo", seed=31, cycles=200)
    command = result.repro_command()
    assert "REPRO_SEED=31" in command
    assert "queue/fifo" in command
    assert "--cycles 200" in command


def test_sessions_are_deterministic_per_seed():
    import json

    runs = [verify("stack/lifo", seed=11, cycles=500) for _ in range(2)]
    dicts = [json.dumps(r.coverage.to_dict(), sort_keys=True) for r in runs]
    assert dicts[0] == dicts[1]
    assert runs[0].transactions == runs[1].transactions
    different = verify("stack/lifo", seed=12, cycles=500)
    assert json.dumps(different.coverage.to_dict(), sort_keys=True) != dicts[0]


def test_verify_all_merges_coverage_across_seeds():
    results, db = verify_all(["queue/fifo", "design/saa2vga-fifo"],
                             seeds=(0, 1), cycles=600)
    assert len(results) == 4
    assert isinstance(db, CoverageDB)
    assert set(db.groups) == {"queue/fifo", "design/saa2vga-fifo"}
    # Merged hit counts equal the per-run sums.
    per_run = sum(r.coverage.points["fill"].bins["accept"].hits
                  for r in results if r.target == "queue/fifo")
    assert db.groups["queue/fifo"]["points"]["fill"]["accept"] == per_run


def test_design_targets_cover_both_table3_pipelines():
    names = design_targets()
    assert any("saa2vga" in n for n in names)
    assert any("blur" in n for n in names)
