"""Verification targets for the metagen components and the flow pipeline.

The satellite guarantee of the composition PR: the width converters and the
arbiters are first-class verification targets (not just transitively
exercised inside designs), with 100 % coverage closure at seeds 0-2 — the
same seed matrix the CI ``randomized-verification`` job runs.
"""

import pytest

from repro.metagen import WidthAdaptationPlan, WidthDownConverter
from repro.rtl import COMPILED, EVENT, FIXPOINT, Component, Simulator
from repro.verify import TARGETS, WidthAdapterMonitor, metagen_targets, verify

NEW_TARGETS = ("adapter/down", "adapter/up",
               "arbiter/priority", "arbiter/roundrobin")


def test_metagen_targets_are_registered():
    assert set(metagen_targets()) == set(NEW_TARGETS)
    assert "design/flow-dualpath" in TARGETS


@pytest.mark.parametrize("seed", [0, 1, 2])
@pytest.mark.parametrize("name", NEW_TARGETS)
def test_coverage_closure_at_ci_seed_matrix(name, seed):
    """Closure at every seed individually, not just merged across seeds."""
    result = verify(name, seed=seed)
    assert result.ok, "\n".join(str(v) for v in result.violations[:5])
    assert result.coverage_percent == 100.0, \
        f"unhit coverage goals: {result.coverage.unhit()}"
    assert result.transactions > 0


@pytest.mark.parametrize("seed", [0, 1, 2])
def test_flow_pipeline_target_closes_with_edge_monitors(seed):
    result = verify("design/flow-dualpath", seed=seed)
    assert result.ok
    assert result.coverage_percent == 100.0


@pytest.mark.parametrize("name", ["adapter/down", "arbiter/roundrobin",
                                  "design/flow-dualpath"])
def test_new_targets_identical_across_strategies(name):
    import json

    outcomes = {}
    for strategy in (FIXPOINT, EVENT, COMPILED):
        result = verify(name, seed=4, cycles=600, strategy=strategy)
        outcomes[strategy] = (
            json.dumps(result.coverage.to_dict(), sort_keys=True),
            result.transactions,
            [str(v) for v in result.violations],
        )
    assert outcomes[EVENT] == outcomes[FIXPOINT]
    assert outcomes[COMPILED] == outcomes[FIXPOINT]


# -- the monitors actually catch faults ---------------------------------------


class _FakeConverter(Component):
    """A converter-shaped shell whose signals a test drives directly."""

    def __init__(self) -> None:
        super().__init__("fake")
        from repro.core.interfaces import StreamSinkIface, StreamSourceIface

        self.plan = WidthAdaptationPlan(16, 8)
        self.wide_in = StreamSinkIface(self, 16, name="fake_wide")
        self.narrow_out = StreamSourceIface(self, 8, name="fake_narrow")
        self._remaining = self.signal(2, name="fake_remaining")


def test_adapter_monitor_flags_wrong_beat_order():
    dut = _FakeConverter()
    sim = Simulator(dut)
    monitor = WidthAdapterMonitor("fake", dut, "down").attach(sim)

    # Accept the element 0xABCD, then emit the LOW byte first (wrong: the
    # plan says most-significant beat first).
    dut.wide_in.data.force(0xABCD)
    dut.wide_in.push.force(1)
    dut.wide_in.ready.force(1)
    monitor.pre_edge(sim.cycles)
    sim.step()
    dut.wide_in.push.force(0)
    dut.wide_in.ready.force(0)
    dut._remaining.force(2)
    dut.narrow_out.data.force(0xCD)
    dut.narrow_out.valid.force(1)
    dut.narrow_out.pop.force(1)
    monitor.pre_edge(sim.cycles)
    assert not monitor.ok
    assert any(v.rule.endswith("data-mismatch") for v in monitor.violations)
    monitor.detach()


def test_adapter_monitor_flags_phantom_output():
    dut = _FakeConverter()
    sim = Simulator(dut)
    monitor = WidthAdapterMonitor("fake", dut, "down").attach(sim)
    dut.narrow_out.data.force(0x55)
    dut.narrow_out.valid.force(1)
    dut.narrow_out.pop.force(1)
    monitor.pre_edge(sim.cycles)
    assert any(v.rule.endswith("phantom-output") for v in monitor.violations)
    monitor.detach()


def test_adapter_monitor_rejects_bad_direction():
    dut = WidthDownConverter("dut", element_width=16, bus_width=8)
    with pytest.raises(ValueError):
        WidthAdapterMonitor("bad", dut, "sideways")


def test_real_converter_session_is_clean_under_monitor():
    """Sanity: the real converter driven politely produces no violations."""
    dut = WidthDownConverter("dut", element_width=16, bus_width=8)
    sim = Simulator(dut)
    monitor = WidthAdapterMonitor("dut", dut, "down").attach(sim)
    received = []
    elements = [0x1234, 0xBEEF, 0x0001]
    feed = list(elements)
    for _ in range(200):
        if feed and dut.wide_in.ready.value:
            dut.wide_in.data.force(feed[0])
            dut.wide_in.push.force(1)
        else:
            dut.wide_in.push.force(0)
        dut.narrow_out.pop.force(1)
        sim.settle()
        if dut.wide_in.push.value and dut.wide_in.ready.value:
            feed.pop(0)
        if dut.narrow_out.valid.value:
            received.append(dut.narrow_out.data.value)
        monitor.pre_edge(sim.cycles)
        sim.step()
        if len(received) == 6:
            break
    expected = [b for e in elements for b in WidthAdaptationPlan(16, 8).split(e)]
    assert received == expected
    assert monitor.ok, monitor.violations[:3]
    monitor.detach()
