"""Property-based tests for :class:`CoverageDB` merging.

The search driver treats the merged coverage database as persistent
fitness state, so the merge operation must behave like a commutative
monoid over hit-count vectors: the order sessions land in (parallel
workers, re-runs, warm-state reloads) must never change the closure
picture.  Rather than hand-pick cases, a seeded generator fabricates
random serialized covergroups (the exact dict form
``CoverGroup.to_dict`` emits and :class:`ResultStore` records carry)
and every law is checked over many draws — failures print the
generator seed so a shrink is one ``Random(seed)`` away.
"""

import copy
import random

import pytest

from repro.verify.coverage import CoverageDB

TRIALS = 25


# -- seeded generator ------------------------------------------------------

def group_structure(name):
    """Deterministic per-name shape: bins and declared cross combos.

    Structure is a pure function of the group name (derived via a
    name-seeded ``Random``) so every generated sample of ``name`` merges
    cleanly, exactly like repeated sessions of one registered target.
    """
    rng = random.Random(f"structure:{name}")
    points = {f"p{i}": [f"b{j}" for j in range(rng.randint(1, 4))]
              for i in range(rng.randint(1, 3))}
    crosses = {}
    pnames = sorted(points)
    if len(pnames) >= 2 and rng.random() < 0.75:
        left, right = pnames[0], pnames[1]
        combos = [f"{a}|{b}" for a in points[left] for b in points[right]
                  if rng.random() < 0.5]
        if combos:
            crosses["x0"] = {"points": [left, right], "hits": combos}
    return points, crosses


def sample_group(rng, name):
    """One serialized covergroup with random hit counts (zeros allowed)."""
    points, crosses = group_structure(name)
    data = {
        "name": name,
        "samples": rng.randint(0, 9),
        "points": {p: {b: rng.randint(0, 3) for b in bins}
                   for p, bins in points.items()},
        "crosses": {c: {"points": cdata["points"],
                        "hits": {k: rng.randint(0, 2)
                                 for k in cdata["hits"]}}
                    for c, cdata in crosses.items()},
    }
    return data


def sample_db(rng, names=("alpha", "beta/gamma")):
    db = CoverageDB()
    for _ in range(rng.randint(0, 4)):
        db.add(sample_group(rng, rng.choice(names)))
    return db


def merged(*dbs):
    out = CoverageDB()
    for db in dbs:
        out.merge(db)
    return out


# -- monoid laws -----------------------------------------------------------

@pytest.mark.parametrize("seed", range(TRIALS))
def test_merge_is_commutative(seed):
    rng = random.Random(seed)
    a, b = sample_db(rng), sample_db(rng)
    assert merged(a, b).to_json() == merged(b, a).to_json(), \
        f"generator seed {seed}"


@pytest.mark.parametrize("seed", range(TRIALS))
def test_merge_is_associative(seed):
    rng = random.Random(seed)
    a, b, c = sample_db(rng), sample_db(rng), sample_db(rng)
    left = merged(merged(a, b), c)
    right = merged(a, merged(b, c))
    assert left.to_json() == right.to_json(), f"generator seed {seed}"


@pytest.mark.parametrize("seed", range(TRIALS))
def test_empty_db_is_the_identity(seed):
    rng = random.Random(seed)
    a = sample_db(rng)
    assert merged(CoverageDB(), a).to_json() == a.to_json()
    assert merged(a, CoverageDB()).to_json() == a.to_json()


@pytest.mark.parametrize("seed", range(TRIALS))
def test_remerge_is_idempotent_at_closure_level(seed):
    """Merging a database into itself doubles counts but must leave the
    closure picture — percent, hit-goal set, unhit list — untouched.
    This is what makes warm-state re-search safe to replay."""
    rng = random.Random(seed)
    db = sample_db(rng)
    before = (db.percent(), db.unhit(),
              {n: db._hit_goals(n) for n in db.groups})
    db.merge(copy.deepcopy(db))
    after = (db.percent(), db.unhit(),
             {n: db._hit_goals(n) for n in db.groups})
    assert before == after, f"generator seed {seed}"


@pytest.mark.parametrize("seed", range(TRIALS))
def test_json_round_trip_is_identity(seed):
    rng = random.Random(seed)
    db = sample_db(rng)
    restored = CoverageDB.from_json(db.to_json())
    assert restored.to_json() == db.to_json(), f"generator seed {seed}"


@pytest.mark.parametrize("seed", range(TRIALS))
def test_merge_adds_hit_counts_exactly(seed):
    """Per-bin hits of a merge equal the integer sum of the operands'."""
    rng = random.Random(seed)
    a, b = sample_db(rng), sample_db(rng)
    both = merged(a, b)
    for name, data in both.groups.items():
        for pname, bins in data.get("points", {}).items():
            for bname, hits in bins.items():
                expect = sum(db.groups.get(name, {})
                             .get("points", {}).get(pname, {})
                             .get(bname, 0) for db in (a, b))
                assert hits == expect, (seed, name, pname, bname)


# -- the search-facing delta API -------------------------------------------

@pytest.mark.parametrize("seed", range(TRIALS))
def test_add_delta_partitions_the_hit_set(seed):
    """Sequential ``add_delta`` calls report every hit goal exactly once:
    their union is the final hit set, their pairwise intersections are
    empty.  This is the marginal-closure reward signal — a goal must
    never pay out twice."""
    rng = random.Random(seed)
    name = "alpha"
    sessions = [sample_group(rng, name) for _ in range(5)]
    db = CoverageDB()
    deltas = [db.add_delta(session) for session in sessions]
    flat = [goal for delta in deltas for goal in delta]
    assert len(flat) == len(set(flat)), f"goal rewarded twice (seed {seed})"
    assert set(flat) == db._hit_goals(name), f"generator seed {seed}"


@pytest.mark.parametrize("seed", range(TRIALS))
def test_add_delta_of_already_merged_group_is_empty(seed):
    rng = random.Random(seed)
    session = sample_group(rng, "alpha")
    db = CoverageDB()
    db.add(session)
    assert db.add_delta(copy.deepcopy(session)) == []


@pytest.mark.parametrize("seed", range(TRIALS))
def test_open_goals_complements_hit_goals(seed):
    rng = random.Random(seed)
    db = sample_db(rng)
    for name in db.groups:
        open_ = set(db.open_goals(name))
        hit = db._hit_goals(name)
        assert not open_ & hit, f"generator seed {seed}"
        total = db.percent(name)
        if not open_:
            assert total == pytest.approx(100.0)
        if not hit:
            assert total == pytest.approx(0.0)
    # Concatenated per-group views equal the global unhit list.
    all_open = sorted(g for name in db.groups for g in db.open_goals(name))
    assert all_open == sorted(db.unhit())


def test_open_goals_of_unknown_group_is_empty_not_error():
    db = CoverageDB()
    assert db.open_goals("never/sampled") == []
    assert db.add_delta({"name": "fresh", "samples": 1,
                         "points": {"p": {"b": 1}},
                         "crosses": {}}) == ["fresh.p.b"]


def test_add_delta_reports_cross_goals_with_dotted_spelling():
    db = CoverageDB()
    closed = db.add_delta({
        "name": "g", "samples": 1,
        "points": {"op": {"push": 1, "pop": 0}},
        "crosses": {"opx": {"points": ["op", "occ"],
                            "hits": {"push|empty": 1, "pop|full": 0}}}})
    assert closed == ["g.op.push", "g.opx.pushxempty"]
    assert db.open_goals("g") == ["g.op.pop", "g.opx.popxfull"]
