"""Monitors and scoreboards: detection, attach/detach lifecycle, models."""

import pytest

from repro.core import make_container
from repro.rtl import SimulationError, Simulator
from repro.verify import (
    FifoModel,
    LifoModel,
    LineBufferModel,
    MultisetModel,
    StreamContainerMonitor,
    VectorModel,
)


def make_queue_bench():
    dut = make_container("queue", "fifo", "q", width=8, capacity=4)
    sim = Simulator(dut)
    monitor = StreamContainerMonitor("queue/fifo", dut, dut.sink, dut.source,
                                     FifoModel(4)).attach(sim)
    return dut, sim, monitor


def run_cycle(dut, sim, monitor, push=0, data=0, pop=0):
    dut.sink.data.force(data)
    dut.sink.push.force(push)
    dut.source.pop.force(pop)
    sim.settle()
    monitor.pre_edge(sim.cycles)
    sim.step()


def test_clean_fifo_traffic_produces_no_violations():
    dut, sim, monitor = make_queue_bench()
    values = [11, 22, 33]
    for value in values:
        run_cycle(dut, sim, monitor, push=1, data=value)
    run_cycle(dut, sim, monitor)
    popped = []
    for _ in values:
        popped.append(dut.source.data.value)
        run_cycle(dut, sim, monitor, pop=1)
    assert monitor.ok
    assert popped == values
    assert monitor.transactions == 6


def test_blind_strobes_are_legal_stimulus():
    dut, sim, monitor = make_queue_bench()
    # Pop on empty and push on full never count as accepted transactions.
    run_cycle(dut, sim, monitor, pop=1)
    for i in range(6):  # two more than capacity
        run_cycle(dut, sim, monitor, push=1, data=i)
    assert monitor.ok
    assert dut.occupancy == 4


def test_monitor_flags_externally_corrupted_data():
    dut, sim, monitor = make_queue_bench()
    run_cycle(dut, sim, monitor, push=1, data=0x55)
    # Corrupt the stored element behind the container's back.
    dut.fifo._mem[dut.fifo._rd_ptr.value] = 0xAA
    run_cycle(dut, sim, monitor, pop=1)
    assert not monitor.ok
    assert any(v.rule.endswith("data-mismatch") for v in monitor.violations)


def test_detach_stops_post_edge_checks_and_is_idempotent():
    dut, sim, monitor = make_queue_bench()
    watchers_before = len(sim._watchers)
    monitor.detach()
    assert len(sim._watchers) == watchers_before - 1
    monitor.detach()  # second detach is a no-op
    # Post-edge hooks no longer run: a corrupted occupancy goes unnoticed.
    dut.sink.push.force(1)
    sim.step()
    assert monitor.ok


def test_remove_watcher_rejects_unregistered_callable():
    _, sim, _ = make_queue_bench()
    with pytest.raises(SimulationError):
        sim.remove_watcher(lambda cycle: None)


# -- golden models -----------------------------------------------------------


def test_fifo_model_orders_and_bounds():
    model = FifoModel(2)
    assert model.push(1) is None
    assert model.push(2) is None
    assert model.push(3) is not None          # overflow reported
    assert model.pop(2) is not None           # wrong order reported
    assert model.pop(2) is None               # 1 was consumed by the check
    assert model.pop(9) is not None           # underflow reported


def test_lifo_model_replace_top_matches_concurrent_push_pop():
    model = LifoModel(4)
    model.push(1)
    model.push(2)
    assert model.replace_top(7) is None
    assert model.front() == 7
    assert model.pop(7) is None
    assert model.pop(1) is None


def test_multiset_model_checks_conservation_only():
    model = MultisetModel(3)
    model.push(5)
    model.push(5)
    assert model.pop(5) is None
    assert model.pop(5) is None
    assert model.pop(5) is not None           # popped more than pushed


def test_vector_model_read_write():
    model = VectorModel(4, 8)
    model.write(2, 0xAB)
    assert model.read(2, 0xAB) is None
    assert model.read(2, 0xCD) is not None


def test_linebuffer_model_checks_columns():
    width = 4
    model = LineBufferModel(width)
    for pixel in range(3 * width + 1):
        model.push(pixel)
    assert model.pop_column(0, 4, 8) is None      # k = 0
    assert model.pop_column(1, 5, 9) is None      # k = 1
    assert model.pop_column(0, 0, 0) is not None  # wrong column


def test_iterator_monitor_flags_out_of_bounds_seek():
    from repro.core import make_iterator
    from repro.verify import IteratorMonitor, RandomPortMonitor
    from repro.verify.rng import RngPool
    from repro.verify.stimulus import IteratorConstraints, IteratorOpDriver

    # Non-power-of-2 capacity: pos is then wide enough (3 bits for 5) to
    # carry an out-of-range position instead of masking it away.
    capacity = 5
    vec = make_container("vector", "registers", "vec", width=8,
                         capacity=capacity)
    it = make_iterator(vec, "random", readable=True, writable=True, name="it")

    class Harness(__import__("repro.rtl", fromlist=["Component"]).Component):
        def __init__(self):
            super().__init__("h")
            self.child(vec)
            self.child(it)

    sim = Simulator(Harness())
    monitor = IteratorMonitor("it", it.iface, capacity).attach(sim)
    port_monitor = RandomPortMonitor("port", vec.port,
                                     VectorModel(capacity, 8)).attach(sim)
    # Only seeks, with overshoot enabled: the driver targets positions up
    # to 2*capacity-1, so the monitor's seek-bounds rule must fire.
    driver = IteratorOpDriver(
        it.iface, RngPool(0).stream("seek"), capacity,
        IteratorConstraints(weights={"seek": 1.0}), seek_overshoot=True)
    for _ in range(120):
        driver.drive(sim.cycles)
        sim.settle()
        driver.observe(sim.cycles)
        monitor.pre_edge(sim.cycles)
        port_monitor.pre_edge(sim.cycles)
        sim.step()
    monitor.detach()
    port_monitor.detach()
    flagged = [v for v in monitor.violations
               if v.rule.endswith("seek-out-of-bounds")]
    assert flagged, "overshooting seeks must be flagged"
    # No other rule may false-positive on legal overshoot-free operation.
    assert len(flagged) == len(monitor.violations)
    assert port_monitor.ok
