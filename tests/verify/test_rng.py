"""Seeded named-stream RNG: determinism, independence, env plumbing."""

import random

from repro.verify.rng import (
    RngPool,
    SEED_ENV,
    default_seed,
    derive_seed,
    stream,
)


def test_same_seed_and_name_reproduce_identical_draws():
    a = stream(42, "stimulus.fill")
    b = stream(42, "stimulus.fill")
    assert [a.randint(0, 255) for _ in range(50)] == \
           [b.randint(0, 255) for _ in range(50)]


def test_streams_are_independent_by_name_and_seed():
    draws = {}
    for seed, name in [(0, "a"), (0, "b"), (1, "a")]:
        draws[(seed, name)] = [stream(seed, name).randint(0, 1 << 30)
                               for _ in range(10)]
    assert draws[(0, "a")] != draws[(0, "b")]
    assert draws[(0, "a")] != draws[(1, "a")]


def test_derive_seed_is_stable_and_name_sensitive():
    assert derive_seed(7, "x") == derive_seed(7, "x")
    assert derive_seed(7, "x") != derive_seed(7, "y")
    assert derive_seed(7, "x") != derive_seed(8, "x")


def test_pool_caches_streams_and_reports_repro_hint():
    pool = RngPool(9)
    first = pool.stream("fill")
    first.random()
    # The cached stream keeps its state; a sibling name starts fresh.
    assert pool.stream("fill") is first
    assert pool.stream("drain") is not first
    assert pool.reproduce_hint() == f"{SEED_ENV}=9"


def test_default_seed_reads_environment(monkeypatch):
    monkeypatch.delenv(SEED_ENV, raising=False)
    assert default_seed() == 0
    monkeypatch.setenv(SEED_ENV, "123")
    assert default_seed() == 123
    assert RngPool().seed == 123
    monkeypatch.setenv(SEED_ENV, "not-a-number")
    assert default_seed() == 0


def test_streams_are_plain_random_instances():
    assert isinstance(stream(0, "x"), random.Random)
