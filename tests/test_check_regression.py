"""benchmarks/check_regression.py: floors still gate, --baseline compares.

The compare mode is informational by design (shared CI hardware makes
run-to-run deltas too noisy to gate on), but its output is part of the
BENCH_* artifact trajectory, so its shape — and the fact that it never
changes the exit status — is pinned here.
"""

import importlib.util
import json
import pathlib

spec = importlib.util.spec_from_file_location(
    "check_regression",
    pathlib.Path(__file__).resolve().parent.parent / "benchmarks"
    / "check_regression.py")
check_regression = importlib.util.module_from_spec(spec)
spec.loader.exec_module(check_regression)


def artifact(scale=1.0):
    """A payload satisfying every floor, throughput scaled by ``scale``."""
    cps = {}
    for design, fast, slow, floor in check_regression.FLOORS:
        measurements = cps.setdefault(design, {})
        measurements.setdefault(slow, 1_000_000.0 * scale)
        # 2x headroom over the floor so scale tweaks cannot trip gates
        measurements[fast] = measurements[slow] * floor * 2
    return {"profile": "test", "cycles_per_second": cps}


def write(tmp_path, name, payload):
    path = tmp_path / name
    path.write_text(json.dumps(payload), encoding="utf-8")
    return str(path)


def test_floors_pass_and_fail(tmp_path, capsys):
    good = write(tmp_path, "good.json", artifact())
    assert check_regression.main(["check", good]) == 0
    assert "all performance floors hold" in capsys.readouterr().out

    bad_payload = artifact()
    design, fast, slow, floor = check_regression.FLOORS[0]
    bad_payload["cycles_per_second"][design][fast] = \
        bad_payload["cycles_per_second"][design][slow] * floor * 0.5
    bad = write(tmp_path, "bad.json", bad_payload)
    assert check_regression.main(["check", bad]) == 1
    assert "floors violated" in capsys.readouterr().err


def test_compare_reports_per_metric_deltas():
    rows = check_regression.compare(artifact(1.1), artifact(1.0))
    assert rows, "identical metric sets must all be compared"
    for _design, _strategy, then, now, delta in rows:
        assert abs(delta - 10.0) < 1e-6
        assert now > then
    # disjoint artifacts compare to nothing, not an error
    assert check_regression.compare(artifact(), {"cycles_per_second": {}}) \
        == []


def test_baseline_mode_is_informational_and_writes_summary(tmp_path, capsys):
    current = write(tmp_path, "current.json", artifact(0.5))  # 50% slower
    baseline = write(tmp_path, "baseline.json", artifact(1.0))
    summary = tmp_path / "summary.md"
    # Heavy regression vs baseline, but floors hold -> still exit 0.
    assert check_regression.main(
        ["check", current, "--baseline", baseline,
         "--summary", str(summary)]) == 0
    out = capsys.readouterr().out
    assert "deltas vs baseline" in out
    assert "-50.0%" in out
    text = summary.read_text()
    assert "Benchmark deltas vs previous run" in text
    assert "| design | strategy |" in text
    assert "-50.0%" in text


def test_unreadable_baseline_is_skipped_not_fatal(tmp_path, capsys):
    current = write(tmp_path, "current.json", artifact())
    assert check_regression.main(
        ["check", current, "--baseline", str(tmp_path / "missing.json")]) == 0
    assert "skipping comparison" in capsys.readouterr().out
