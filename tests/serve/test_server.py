"""The HTTP/JSON front end and its client.

Each test spins a real :class:`SweepServer` on an ephemeral port and talks
to it over actual sockets via :class:`SweepClient` — the same path
``python -m repro.explore --server`` uses.
"""

import json
import urllib.request

import pytest

from repro.rtl import instrument
from repro.serve import ServiceError, SweepClient, SweepServer
from repro.serve.store import ResultStore

SPEC = {"designs": ["saa2vga"], "bindings": ["fifo", "sram"],
        "capacities": [8], "frames": ["8x4"]}


@pytest.fixture()
def server(tmp_path):
    with SweepServer(ResultStore(tmp_path / "store"), workers=2,
                     shard_size=2, stream_poll=0.02) as srv:
        yield srv


def submit_and_wait(server, body, timeout=60):
    client = SweepClient(server.url)
    job = client.submit(body)
    status = client.wait(job["id"], timeout=timeout)
    return client, job["id"], status


# -- endpoints ------------------------------------------------------------------


def test_healthz_reports_store_stats(server):
    payload = SweepClient(server.url).health()
    assert payload["ok"] is True
    assert payload["jobs"] == 0
    assert payload["store"]["entries"] == 0


def test_submit_runs_a_sweep_and_serves_results(server):
    client, job_id, status = submit_and_wait(server, {"spec": SPEC})
    assert status["state"] == "done"
    assert status["total"] == 2 and status["simulated"] == 2
    assert status["pending"] == 0

    payload = client.results(job_id)
    assert payload["state"] == "done"
    assert len(payload["records"]) == 2 and payload["failures"] == []
    bindings = [r["point"]["binding"] for r in payload["records"]]
    assert bindings == ["fifo", "sram"], "records keep submission order"

    listed = client.sweeps()
    assert [job["id"] for job in listed] == [job_id]


def test_event_stream_is_ndjson_and_follow_blocks_until_done(server):
    client, job_id, _ = submit_and_wait(server, {"spec": SPEC})
    events = list(client.events(job_id, follow=True))
    names = [e["event"] for e in events]
    assert names[0] == "submitted"
    assert names[-1] == "completed"
    assert [e["seq"] for e in events] == list(range(len(events)))
    # Raw wire format really is one JSON object per line.
    with urllib.request.urlopen(f"{server.url}/sweeps/{job_id}/events",
                                timeout=10) as response:
        assert response.headers["Content-Type"] == "application/x-ndjson"
        lines = [line for line in response.read().splitlines() if line]
    assert [json.loads(line)["event"] for line in lines] == names
    # ?since= resumes mid-log.
    assert [e["event"] for e in client.events(job_id, since=2)] == names[2:]


def test_results_by_key_is_served_without_simulating(server):
    client, job_id, _ = submit_and_wait(server, {"spec": SPEC})
    key = client.results(job_id)["records"][0]["key"]

    before = instrument.snapshot()
    record = client.result(key)
    assert record["key"] == key
    assert record["kind"] == "exploration"
    assert instrument.simulations_since(before) == 0, \
        "GET /results/<key> must be a pure store read"


def test_points_submission_and_config_round_trip(server):
    body = {
        "points": [{"family": "design", "design": "saa2vga",
                    "binding": "fifo", "pixel_format": "gray8",
                    "frame_width": 8, "frame_height": 4, "capacity": 8}],
        "config": {"strategy": "compiled", "verify": False},
    }
    client, job_id, status = submit_and_wait(server, body)
    assert status["state"] == "done"
    assert status["config"]["strategy"] == "compiled"
    record = client.results(job_id)["records"][0]
    assert record["config"]["strategy"] == "compiled"


# -- the warm-cache acceptance criterion ----------------------------------------


def test_second_identical_sweep_is_fully_cache_served_with_zero_sims(server):
    client, _, first = submit_and_wait(server, {"spec": SPEC})
    assert first["simulated"] == 2

    before = instrument.snapshot()
    _, job2, second = submit_and_wait(server, {"spec": SPEC})
    assert second["state"] == "done"
    assert second["cached"] == 2 and second["simulated"] == 0
    assert instrument.simulations_since(before) == 0, \
        "a warm re-sweep must construct zero simulators in the service"
    events = [e["event"] for e in client.events(job2)]
    assert "shard_started" not in events, \
        "no shard may even be dispatched to a worker on a warm sweep"
    assert "cache_served" in events


def test_store_written_by_cli_mode_serves_server_sweeps(tmp_path):
    """CLI --store and the server share one key scheme (one store)."""
    from repro.explore.__main__ import main as explore_main

    store_dir = tmp_path / "store"
    argv = ["--designs", "saa2vga", "--bindings", "fifo", "sram",
            "--capacities", "8", "--frames", "8x4", "--quiet"]
    assert explore_main(argv + ["--store", str(store_dir)]) == 0

    with SweepServer(ResultStore(store_dir), workers=1) as server:
        _, _, status = submit_and_wait(
            server, {"spec": SPEC, "config": {"strategy": "auto"}})
    assert status["cached"] == 2 and status["simulated"] == 0


# -- error handling -------------------------------------------------------------


def test_api_errors_are_json_with_useful_status_codes(server):
    client = SweepClient(server.url)
    with pytest.raises(ServiceError) as excinfo:
        client.status("sweep-999999")
    assert excinfo.value.status == 404

    with pytest.raises(ServiceError) as excinfo:
        client.submit({"spec": {"bogus_axis": [1]}})
    assert excinfo.value.status == 400
    assert "bogus_axis" in str(excinfo.value)

    with pytest.raises(ServiceError) as excinfo:
        client.submit({"unexpected": True})
    assert excinfo.value.status == 400

    with pytest.raises(ServiceError) as excinfo:
        client.result("ff" + "0" * 62)  # valid key shape, nothing stored
    assert excinfo.value.status == 404

    with pytest.raises(ServiceError) as excinfo:
        client.result("nothex!")
    assert excinfo.value.status == 400


def test_empty_submission_is_a_400(server):
    # saa2vga never supports the linebuffer binding, so this expands to
    # zero valid points (same rule that makes the CLI exit 2).
    with pytest.raises(ServiceError) as excinfo:
        SweepClient(server.url).submit(
            {"spec": {"designs": ["saa2vga"], "bindings": ["linebuffer"]}})
    assert excinfo.value.status == 400
