"""Search jobs over the wire: POST /search + the existing follow protocol.

A :class:`SearchJob` duck-types the sweep-job surface, so the
``/sweeps/<id>``, ``/sweeps/<id>/events`` (NDJSON follow) and
``/sweeps/<id>/results`` routes serve it unchanged — only submission and
the ``GET /search`` listing are new.
"""

import pytest

from repro.serve import ServiceError, SweepClient, SweepServer
from repro.serve.jobs import JobManager
from repro.serve.store import ResultStore

BODY = {"targets": ["queue/fifo"], "budget": 4, "cycles": 120, "seed": 0}


@pytest.fixture()
def server(tmp_path):
    with SweepServer(ResultStore(tmp_path / "store"), workers=1,
                     stream_poll=0.02) as srv:
        yield srv


def test_post_search_runs_to_done_and_serves_the_report(server):
    client = SweepClient(server.url)
    submitted = client.submit_search(BODY)
    assert submitted["kind"] == "search"
    assert submitted["id"].startswith("search-")

    status = client.wait(submitted["id"], timeout=120)
    assert status["state"] == "done"
    assert status["sessions"] == 2
    assert status["coverage"] == {"queue/fifo": 100.0}

    payload = client.results(submitted["id"])
    assert payload["records"] == [] and payload.get("failures", []) == []
    report = payload["report"]
    assert report["format"] == "repro-search-v1"
    assert report["closed"] is True
    assert payload["frontier"] is None


def test_event_stream_carries_search_rounds(server):
    client = SweepClient(server.url)
    submitted = client.submit_search(BODY)
    events = list(client.events(submitted["id"], follow=True))
    names = [e["event"] for e in events]
    assert names[0] == "submitted"
    assert names[-1] == "completed"
    rounds = [e for e in events if e["event"] == "search_round"]
    assert [e["round"] for e in rounds] == [0, 1]
    assert all(e["target"] == "queue/fifo" for e in rounds)
    assert events[-1]["closed"] is True


def test_search_listing_is_separate_from_sweeps(server):
    client = SweepClient(server.url)
    submitted = client.submit_search(BODY)
    client.wait(submitted["id"], timeout=120)
    assert [job["id"] for job in client.searches()] == [submitted["id"]]
    assert client.sweeps() == []   # GET /sweeps lists sweep jobs only


def test_frontier_only_search_job(server):
    client = SweepClient(server.url)
    submitted = client.submit_search(
        {"frontier": {"budget": 2, "designs": ["saa2vga"],
                      "capacities": [4, 8]}})
    status = client.wait(submitted["id"], timeout=180)
    assert status["state"] == "done"
    payload = client.results(submitted["id"])
    assert payload["report"] is None
    frontier = payload["frontier"]
    assert frontier["format"] == "repro-frontier-v1"
    assert frontier["evaluations"] == 2


def test_bad_search_bodies_get_http_400(server):
    client = SweepClient(server.url)
    for body in ({}, {"targets": "queue/fifo"},
                 {"targets": ["queue/fifo"], "bogus": 1},
                 {"targets": ["no/such/target"]},
                 {"frontier": {"unknown_axis": []}}):
        with pytest.raises(ServiceError) as exc:
            client.submit_search(body)
        assert exc.value.status == 400, body


def test_failed_search_is_a_failed_job_not_an_http_error():
    manager = JobManager(workers=1)
    try:
        job = manager.submit_search({"targets": ["queue/sram"],
                                     "budget": 1, "cycles": 120})
        job.wait(timeout=120)
        progress = job.progress()
        assert progress["state"] == "failed"
        assert progress["kind"] == "search"
        # The report is still served: budget exhausted, not crashed.
        payload = job.ordered_records()
        assert payload["report"]["closed"] is False
    finally:
        manager.close()


def test_search_jobs_reuse_the_managers_store(tmp_path):
    """A second identical search job replays every session from the
    manager's persistent store — zero fresh simulations."""
    from repro.rtl import instrument

    store = ResultStore(tmp_path / "store")
    manager = JobManager(store=store, workers=1)
    try:
        first = manager.submit_search(dict(BODY))
        first.wait(timeout=120)
        assert first.progress()["state"] == "done"
        assert store.stats()["entries"] > 0

        before = instrument.snapshot()
        second = manager.submit_search(dict(BODY))
        second.wait(timeout=120)
        assert second.progress()["state"] == "done"
        assert instrument.simulations_since(before) == 0
        assert second.ordered_records()["report"]["store_hits"] == \
            second.progress()["sessions"]
    finally:
        manager.close()
