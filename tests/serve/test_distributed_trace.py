"""Distributed telemetry through the job layer and the HTTP service.

Acceptance-criteria drivers: a 2-worker traced sweep merges into one
valid trace with correctly parented spans from >= 2 distinct worker PIDs;
pool-wide counters folded from worker replies equal an equivalent
sequential in-process run; a SIGKILLed worker's shard is flagged
``telemetry: "lost"`` instead of corrupting the merge.
"""

import os
import signal
import time
import urllib.request

import pytest

from repro.explore import DesignPoint
from repro.obs import export
from repro.obs.distributed import reset_worker_telemetry
from repro.obs.metrics import REGISTRY
from repro.serve import jobs as jobs_module
from repro.serve.client import ServiceError, SweepClient
from repro.serve.jobs import JobManager, SweepConfig
from repro.serve.server import SweepServer
from repro.serve.store import ResultStore
from repro.rtl.instrument import SIMULATOR_CONSTRUCTIONS


def make_points(capacities=(8, 12, 16, 24)):
    return [DesignPoint(design="saa2vga", binding="fifo",
                        pixel_format="gray8", frame_width=8, frame_height=4,
                        capacity=capacity) for capacity in capacities]


def run_traced_sweep(workers=2, shard_size=1, store=None, **manager_kw):
    manager = JobManager(store=store, workers=workers,
                         shard_size=shard_size, **manager_kw)
    try:
        job = manager.submit(make_points(),
                             SweepConfig(strategy="compiled", trace=True))
        assert job.wait(timeout=120)
        return job, job.trace_records()
    finally:
        manager.close()


# -- merged trace ---------------------------------------------------------------


def test_two_worker_sweep_merges_one_valid_trace_with_two_pids():
    job, records = run_traced_sweep()
    assert job.state == "done"

    worker_pids = {r["pid"] for r in records
                   if r.get("ph") == "X" and r["name"] == "worker.shard"}
    assert len(worker_pids) >= 2, \
        "shard_size=1 over 4 points on 2 workers must use both workers"
    assert os.getpid() not in worker_pids

    # Structurally valid as a Chrome trace, every pid lane labeled.
    assert export.validate_chrome(export.to_chrome(records)) == []

    # Correct parent linkage at every level: worker.shard -> shard ->
    # sweep root, and worker-internal spans under their worker.shard.
    by_id = {r["id"]: r for r in records if r.get("id") is not None}
    root = next(r for r in records
                if r.get("ph") == "X" and r["name"] == "sweep")
    assert root["parent"] is None
    worker_roots = 0
    for record in records:
        if record.get("ph") != "X":
            continue
        if record["name"] == "shard":
            assert record["parent"] == root["id"]
        elif record["name"] == "worker.shard":
            worker_roots += 1
            assert by_id[record["parent"]]["name"] == "shard"
        elif record["name"] != "sweep":
            parent = by_id.get(record["parent"])
            assert parent is not None, f"dangling parent in {record}"
            assert parent["pid"] == record["pid"], \
                "worker-internal spans must stay inside their worker's tree"
    assert worker_roots == 4  # one per shard attempt

    # >= 95% of the sweep's wall time attributed to its shard spans.
    _, fraction = export.attribution(records)
    assert fraction >= 0.95, f"only {fraction:.1%} attributed"


def test_traced_job_reports_telemetry_progress_and_span_events():
    job, records = run_traced_sweep()
    telemetry = job.progress()["telemetry"]
    assert telemetry["traced"] is True
    assert telemetry["spans"] == len(
        [r for r in records if r["ph"] in ("X", "i")])
    assert len(telemetry["worker_pids"]) >= 2
    assert telemetry["lost_shards"] == 0
    # span events ride the (streamable) job event log
    span_events = [e for e in job.events_since(0) if e["event"] == "span"]
    assert len(span_events) == 4
    assert all(e["spans"] >= 1 for e in span_events)


def test_untraced_job_records_no_trace_and_no_telemetry_block_detail():
    manager = JobManager(store=None, workers=1, shard_size=4)
    try:
        job = manager.submit(make_points((8, 16)),
                             SweepConfig(strategy="compiled"))
        assert job.wait(timeout=120)
        assert job.trace_records() is None
        assert job.progress()["telemetry"] == {"traced": False}
    finally:
        manager.close()


def test_warm_resubmission_of_traced_sweep_has_root_but_no_shards(tmp_path):
    store = ResultStore(tmp_path / "store")
    config = SweepConfig(strategy="compiled", trace=True)
    manager = JobManager(store=store, workers=2, shard_size=1)
    try:
        first = manager.submit(make_points(), config)
        assert first.wait(timeout=120)
        second = manager.submit(make_points(), config)
        assert second.wait(timeout=30)
        records = second.trace_records()
    finally:
        manager.close()
    names = [r["name"] for r in records if r.get("ph") == "X"]
    assert names == ["sweep"], "a fully cached sweep dispatches no shards"
    assert any(r["name"] == "cache_served" for r in records
               if r.get("ph") == "i")


# -- pool-wide counters ---------------------------------------------------------


def test_pool_counters_equal_sequential_run():
    from repro.explore.runner import evaluate_point

    points = make_points()
    reset_worker_telemetry()

    before = REGISTRY.counters().get(SIMULATOR_CONSTRUCTIONS, 0)
    manager = JobManager(store=None, workers=2, shard_size=1)
    try:
        job = manager.submit(points, SweepConfig(strategy="compiled"))
        assert job.wait(timeout=120)
        assert job.progress()["failed"] == 0
    finally:
        manager.close()
    pool_delta = REGISTRY.counters().get(SIMULATOR_CONSTRUCTIONS, 0) - before

    before = REGISTRY.counters().get(SIMULATOR_CONSTRUCTIONS, 0)
    for point in points:
        evaluate_point(point, strategy="compiled")
    sequential_delta = \
        REGISTRY.counters().get(SIMULATOR_CONSTRUCTIONS, 0) - before

    assert pool_delta == sequential_delta != 0, \
        "folded worker deltas must equal the sequential in-process count"


# -- fault injection ------------------------------------------------------------


def test_killed_worker_flags_lost_telemetry_and_merge_survives(
        tmp_path, monkeypatch):
    gate = tmp_path / "gate"
    gate.touch()
    real_evaluate = jobs_module.evaluate_shard

    def gated_evaluate(point_dicts, config_dict):
        while gate.exists():
            time.sleep(0.02)
        return real_evaluate(point_dicts, config_dict)

    monkeypatch.setattr(jobs_module, "evaluate_shard", gated_evaluate)

    manager = JobManager(store=None, workers=1, shard_size=2, max_retries=1)
    try:
        job = manager.submit(make_points((8, 16)),
                             SweepConfig(strategy="compiled", trace=True))
        deadline = time.monotonic() + 20
        while time.monotonic() < deadline:
            if any(e["event"] == "shard_started"
                   for e in job.events_since(0)):
                break
            time.sleep(0.02)
        os.kill(manager.worker_pids()[0], signal.SIGKILL)
        deadline = time.monotonic() + 20
        while time.monotonic() < deadline:
            if any(e["event"] == "shard_requeued"
                   for e in job.events_since(0)):
                break
            time.sleep(0.02)
        gate.unlink()
        assert job.wait(timeout=120)
        records = job.trace_records()
        telemetry = job.progress()["telemetry"]
    finally:
        manager.close()

    assert telemetry["lost_shards"] == 1
    shard_spans = [r for r in records
                   if r.get("ph") == "X" and r["name"] == "shard"]
    lost = [s for s in shard_spans
            if s["args"].get("telemetry") == "lost"]
    assert len(lost) == 1
    assert lost[0]["args"]["attempt"] == 1
    # The retry's attempt produced real telemetry alongside the loss.
    assert any(s["args"].get("attempt") == 2 and
               "telemetry" not in s["args"] for s in shard_spans)
    assert export.validate_chrome(export.to_chrome(records)) == []


# -- HTTP endpoint + client -----------------------------------------------------


@pytest.fixture()
def server(tmp_path):
    with SweepServer(tmp_path / "store", workers=2, shard_size=1) as srv:
        yield srv


def submission(trace=True):
    body = {"points": [
        {"family": "design", "design": "saa2vga", "binding": "fifo",
         "pixel_format": "gray8", "frame_width": 8, "frame_height": 4,
         "capacity": capacity} for capacity in (8, 12, 16, 24)],
        "config": {"strategy": "compiled"}}
    if trace:
        body["config"]["trace"] = True
    return body


def test_trace_endpoint_serves_merged_ndjson(server, tmp_path):
    client = SweepClient(server.url)
    job_id = client.submit(submission())["id"]
    client.wait(job_id, timeout=120)

    records = client.trace(job_id)
    pids = {r["pid"] for r in records
            if r.get("ph") == "X" and r["name"] == "worker.shard"}
    assert len(pids) >= 2
    assert export.validate_chrome(export.to_chrome(records)) == []

    # The client's parse and the wire bytes agree with write_ndjson.
    raw = urllib.request.urlopen(
        f"{server.url}/sweeps/{job_id}/trace", timeout=30).read()
    path = tmp_path / "fetched.ndjson"
    export.write_ndjson(records, path)
    assert path.read_bytes() == raw


def test_trace_endpoint_404_for_untraced_job(server):
    client = SweepClient(server.url)
    job_id = client.submit(submission(trace=False))["id"]
    client.wait(job_id, timeout=120)
    with pytest.raises(ServiceError) as excinfo:
        client.trace(job_id)
    assert excinfo.value.status == 404
    assert "'trace': true" in str(excinfo.value)


def test_metrics_exposition_includes_worker_side_counters(server):
    client = SweepClient(server.url)
    before = REGISTRY.counters().get(SIMULATOR_CONSTRUCTIONS, 0)
    job_id = client.submit(submission(trace=False))["id"]
    client.wait(job_id, timeout=120)
    scrape = urllib.request.urlopen(f"{server.url}/metrics",
                                    timeout=30).read().decode()
    line = next(line for line in scrape.splitlines()
                if line.startswith(f"repro_{SIMULATOR_CONSTRUCTIONS}_total"))
    assert float(line.split()[-1]) - before >= 4, \
        "simulation happens only in workers: the construction counter " \
        "moving in this process proves worker deltas were folded in"
