"""The CLIs as store/service clients.

Pins the acceptance criterion end to end at the command-line layer: the
same grid swept twice through ``python -m repro.explore --store`` and
through ``--server`` constructs **zero** simulators on the second pass
(asserted with the :mod:`repro.rtl.instrument` counters), and ``python -m
repro.verify --store`` replays clean sessions from the store.
"""

import pytest

from repro.explore.__main__ import main as explore_main
from repro.rtl import instrument
from repro.serve import ResultStore, SweepServer
from repro.verify.__main__ import main as verify_main

GRID = ["--designs", "saa2vga", "--bindings", "fifo", "sram",
        "--capacities", "8", "--frames", "8x4"]


# -- explore --store ------------------------------------------------------------


def test_explore_store_mode_warm_resweep_is_zero_simulations(tmp_path, capsys):
    store_dir = str(tmp_path / "store")
    assert explore_main(GRID + ["--store", store_dir]) == 0
    first = capsys.readouterr().out
    assert "2 point(s) evaluated (0 from cache, 0 from store)" in first

    before = instrument.snapshot()
    assert explore_main(GRID + ["--store", store_dir]) == 0
    second = capsys.readouterr().out
    assert "2 point(s) evaluated (2 from cache, 2 from store)" in second
    assert instrument.simulations_since(before) == 0, \
        "a warm --store re-sweep must not construct a single simulator"

    # The reports themselves are identical — cached results are
    # indistinguishable from fresh ones.
    assert [line for line in first.splitlines() if "saa2vga" in line] == \
        [line for line in second.splitlines() if "saa2vga" in line]


def test_explore_store_mode_is_incremental_across_grids(tmp_path, capsys):
    store_dir = str(tmp_path / "store")
    assert explore_main(GRID + ["--store", store_dir]) == 0
    capsys.readouterr()
    # A superset grid only simulates the two genuinely new points.
    wider = ["--designs", "saa2vga", "--bindings", "fifo", "sram",
             "--capacities", "8", "16", "--frames", "8x4"]
    assert explore_main(wider + ["--store", store_dir]) == 0
    out = capsys.readouterr().out
    assert "4 point(s) evaluated (2 from cache, 2 from store)" in out


def test_explore_batched_strategy_shares_the_store_with_auto(tmp_path, capsys):
    """compiled-batched is an execution detail: one store entry either way."""
    store_dir = str(tmp_path / "store")
    assert explore_main(GRID + ["--store", store_dir,
                                "--strategy", "compiled-batched"]) == 0
    capsys.readouterr()
    before = instrument.snapshot()
    assert explore_main(GRID + ["--store", store_dir,
                                "--strategy", "auto"]) == 0
    out = capsys.readouterr().out
    assert "(2 from cache, 2 from store)" in out
    assert instrument.simulations_since(before) == 0


# -- explore --server -----------------------------------------------------------


def test_explore_server_mode_round_trip_and_warm_cache(tmp_path, capsys):
    with SweepServer(ResultStore(tmp_path / "store"), workers=2,
                     shard_size=2) as server:
        assert explore_main(GRID + ["--server", server.url]) == 0
        first = capsys.readouterr().out
        assert f"(0 from cache, via {server.url})" in first
        assert "saa2vga" in first

        before = instrument.snapshot()
        assert explore_main(GRID + ["--server", server.url]) == 0
        second = capsys.readouterr().out
        assert f"(2 from cache, via {server.url})" in second
        assert instrument.simulations_since(before) == 0, \
            "warm server sweeps must be served entirely from the store"

    assert [line for line in first.splitlines() if "saa2vga" in line] == \
        [line for line in second.splitlines() if "saa2vga" in line]


def test_explore_server_mode_failures_set_exit_status(tmp_path, capsys):
    with SweepServer(ResultStore(tmp_path / "store"), workers=1) as server:
        status = explore_main(["--server", server.url + "/missing-prefix",
                               "--quiet"] + GRID)
    assert status == 3  # unreachable/misrouted service is its own exit code


def test_explore_json_artifact_matches_between_local_and_server(tmp_path):
    import json

    with SweepServer(ResultStore(tmp_path / "store"), workers=1) as server:
        local, remote = tmp_path / "local.json", tmp_path / "remote.json"
        assert explore_main(GRID + ["--quiet", "--json", str(local)]) == 0
        assert explore_main(GRID + ["--quiet", "--json", str(remote),
                                    "--server", server.url]) == 0
    local_rows = json.loads(local.read_text())["rows"]
    remote_rows = json.loads(remote.read_text())["rows"]
    assert local_rows == remote_rows, \
        "the service must render the identical Table-3 rows"


# -- verify --store -------------------------------------------------------------


def test_verify_store_mode_replays_clean_sessions(tmp_path, capsys):
    store_dir = str(tmp_path / "store")
    argv = ["queue/fifo", "--seeds", "0", "1", "--strategy", "compiled",
            "--store", store_dir]
    assert verify_main(argv) == 0
    first = capsys.readouterr().out
    assert "[store]" not in first

    before = instrument.snapshot()
    assert verify_main(argv + ["--min-coverage", "90"]) == 0
    second = capsys.readouterr().out
    assert instrument.simulations_since(before) == 0, \
        "clean cached sessions must replay without simulating"
    assert second.count("[store]") == 2
    # Summary lines (and the merged coverage gate) match the live run.
    strip = [line.replace("  [store]", "") for line in second.splitlines()
             if "queue/fifo" in line]
    live = [line for line in first.splitlines() if "queue/fifo" in line]
    assert strip == live


def test_verify_store_mode_only_caches_matching_configs(tmp_path, capsys):
    store_dir = str(tmp_path / "store")
    argv = ["queue/fifo", "--seeds", "0", "--strategy", "compiled",
            "--store", store_dir]
    assert verify_main(argv) == 0
    capsys.readouterr()
    # A different seed or strategy is a different session: not cached.
    assert verify_main(["queue/fifo", "--seeds", "2", "--strategy",
                        "compiled", "--store", store_dir]) == 0
    assert "[store]" not in capsys.readouterr().out
    # Back to the original spelling: cached.
    assert verify_main(argv) == 0
    assert "[store]" in capsys.readouterr().out


@pytest.mark.parametrize("cycles_flag", [[], ["--cycles", "2000"]])
def test_verify_store_keys_resolve_the_default_cycle_budget(
        tmp_path, capsys, cycles_flag):
    """--cycles 2000 and the bare default (2000) land on one store key."""
    store_dir = str(tmp_path / "store")
    assert verify_main(["queue/fifo", "--seeds", "0", "--strategy",
                        "compiled", "--store", store_dir] + cycles_flag) == 0
    capsys.readouterr()
    other = [] if cycles_flag else ["--cycles", "2000"]
    assert verify_main(["queue/fifo", "--seeds", "0", "--strategy",
                        "compiled", "--store", store_dir] + other) == 0
    assert "[store]" in capsys.readouterr().out
