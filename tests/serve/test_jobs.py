"""The async job layer: sharding, incremental diffs, fault injection.

The fault-injection tests drive the acceptance criteria directly: a worker
SIGKILLed mid-shard gets its shard requeued and the sweep still completes
with results bit-identical to a single-process run; a shard that exceeds
its timeout is retried a bounded number of times and then fails *only its
own points*.
"""

import os
import signal
import time

import pytest

from repro.explore import DesignPoint, ExplorationRunner
from repro.serve import jobs as jobs_module
from repro.serve.jobs import (
    JobManager,
    SweepConfig,
    diff_points,
    evaluate_shard,
    split_shards,
)
from repro.serve.records import point_to_dict, result_to_record
from repro.serve.store import ResultStore


def make_points(capacities=(8, 16)):
    return [DesignPoint(design="saa2vga", binding="fifo",
                        pixel_format="gray8", frame_width=8, frame_height=4,
                        capacity=capacity) for capacity in capacities]


def wait_for_event(job, name, timeout=20.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        events = [e for e in job.events_since(0) if e["event"] == name]
        if events:
            return events[0]
        time.sleep(0.02)
    raise AssertionError(
        f"no {name!r} event within {timeout}s; saw "
        f"{[e['event'] for e in job.events_since(0)]}")


# -- planning -------------------------------------------------------------------


def test_split_shards_is_contiguous_and_order_preserving():
    shards = split_shards(list(range(7)), 3)
    assert shards == [[0, 1, 2], [3, 4, 5], [6]]
    with pytest.raises(ValueError):
        split_shards([1], 0)


def test_diff_points_schedules_only_missing_keys(tmp_path):
    store = ResultStore(tmp_path)
    config = SweepConfig(strategy="compiled")
    points = make_points((8, 16, 8))  # one duplicate

    plan = diff_points(points, store, config)
    assert len(plan.keys) == 3
    assert len(plan.todo) == 2, "duplicates collapse onto one key"
    assert plan.cached == {}

    # Persist one of the two, diff again: only the other is scheduled.
    (key, record), = evaluate_shard([point_to_dict(points[0])],
                                    config.to_dict())
    store.put(key, record)
    plan = diff_points(points, store, config)
    assert list(plan.cached) == [key]
    assert plan.todo == [points[1]]


def test_evaluate_shard_matches_the_in_process_runner():
    points = make_points()
    config = SweepConfig(strategy="compiled")
    shard_records = dict(evaluate_shard(
        [point_to_dict(p) for p in points], config.to_dict()))

    runner = ExplorationRunner(strategy="compiled")
    for point, result in zip(points, runner.run(points)):
        key = config.key_for(point)
        expected = result_to_record(result, key, config.record_config())
        assert shard_records[key] == expected


# -- happy path through real worker processes -----------------------------------


def test_manager_runs_a_sweep_and_warm_resubmission_is_all_cached(tmp_path):
    store = ResultStore(tmp_path)
    points = make_points((8, 16, 32))
    with JobManager(store=store, workers=2, shard_size=2) as manager:
        job = manager.submit(points, SweepConfig(strategy="compiled"))
        assert job.wait(timeout=60)
        progress = job.progress()
        assert progress["state"] == "done"
        assert progress["simulated"] == 3 and progress["cached"] == 0
        assert progress["pending"] == 0

        job2 = manager.submit(points, SweepConfig(strategy="compiled"))
        assert job2.wait(timeout=10)
        progress2 = job2.progress()
        assert progress2["cached"] == 3 and progress2["simulated"] == 0
        events2 = [e["event"] for e in job2.events_since(0)]
        assert "shard_started" not in events2, \
            "a fully cached sweep must never dispatch work"
        assert job2.ordered_records()["records"] == \
            job.ordered_records()["records"]


def test_deterministic_evaluation_errors_fail_without_retry(tmp_path):
    store = ResultStore(tmp_path)
    good = make_points((8,))[0]
    # Grid expansion would drop an unknown design family, but a point
    # constructed directly reaches the worker and raises inside evaluation.
    bad = DesignPoint(design="nonsense", binding="fifo", pixel_format="gray8",
                      frame_width=8, frame_height=4, capacity=8)
    with JobManager(store=store, workers=2, shard_size=1) as manager:
        job = manager.submit([good, bad], SweepConfig(strategy="compiled"))
        assert job.wait(timeout=60)
        progress = job.progress()
        assert progress["state"] == "failed"
        assert progress["failed"] == 1
        assert progress["simulated"] == 1, "the sibling shard still completed"
        assert manager.requeues == 0, "evaluation errors must not retry"
        payload = job.ordered_records()
        assert len(payload["failures"]) == 1
        assert "nonsense" in payload["failures"][0]["error"]
        # Failures are job state only — never persisted.
        assert store.get(payload["failures"][0]["key"]) is None


# -- fault injection: worker death ----------------------------------------------


def test_killed_worker_requeues_shard_and_results_match_sequential(
        tmp_path, monkeypatch):
    gate = tmp_path / "gate"
    gate.touch()
    real_evaluate = jobs_module.evaluate_shard

    def gated_evaluate(point_dicts, config_dict):
        # Workers fork from this process, so the patch (and the gate path)
        # is inherited; evaluation stalls until the test removes the gate.
        while gate.exists():
            time.sleep(0.02)
        return real_evaluate(point_dicts, config_dict)

    monkeypatch.setattr(jobs_module, "evaluate_shard", gated_evaluate)

    store = ResultStore(tmp_path / "store")
    points = make_points((8, 16))
    manager = JobManager(store=store, workers=1, shard_size=1, max_retries=1)
    try:
        job = manager.submit(points, SweepConfig(strategy="compiled"))
        wait_for_event(job, "shard_started")
        victim = manager.worker_pids()[0]
        os.kill(victim, signal.SIGKILL)

        requeued = wait_for_event(job, "shard_requeued")
        assert requeued["attempt"] == 1
        gate.unlink()  # let the respawned worker proceed at full speed

        assert job.wait(timeout=60)
        progress = job.progress()
        assert progress["state"] == "done"
        assert progress["failed"] == 0
        assert progress["simulated"] == 2
        assert manager.requeues >= 1
        assert victim not in manager.worker_pids(), \
            "the killed worker must have been replaced"
        service_records = job.ordered_records()["records"]
    finally:
        manager.close()

    # Bit-identical to a single-process, in-process run of the same grid.
    config = SweepConfig(strategy="compiled")
    runner = ExplorationRunner(strategy="compiled")
    expected = [
        result_to_record(result, config.key_for(point),
                         config.record_config())
        for point, result in zip(points, runner.run(points))
    ]
    assert service_records == expected


# -- fault injection: shard timeout ---------------------------------------------


def test_shard_timeout_fails_after_bounded_retries_without_poisoning_siblings(
        tmp_path, monkeypatch):
    real_evaluate = jobs_module.evaluate_shard
    SLOW_CAPACITY = 16

    def selectively_slow(point_dicts, config_dict):
        if any(data["capacity"] == SLOW_CAPACITY for data in point_dicts):
            time.sleep(120)  # guaranteed to exceed any shard timeout
        return real_evaluate(point_dicts, config_dict)

    monkeypatch.setattr(jobs_module, "evaluate_shard", selectively_slow)

    store = ResultStore(tmp_path / "store")
    fast, slow = make_points((8, SLOW_CAPACITY))
    manager = JobManager(store=store, workers=2, shard_size=1,
                         shard_timeout=0.5, max_retries=1)
    try:
        job = manager.submit([fast, slow], SweepConfig(strategy="compiled"))
        assert job.wait(timeout=60)
        progress = job.progress()
        assert progress["state"] == "failed"
        assert progress["failed"] == 1
        assert progress["simulated"] == 1, \
            "the sibling shard's result must survive the timeout next door"
        assert progress["pending"] == 0

        events = [e["event"] for e in job.events_since(0)]
        assert events.count("shard_requeued") == 1, \
            "max_retries=1 allows exactly one re-dispatch"
        assert events.count("shard_failed") == 1

        payload = job.ordered_records()
        config = SweepConfig(strategy="compiled")
        assert [r["key"] for r in payload["records"]] == \
            [config.key_for(fast)]
        assert payload["failures"][0]["key"] == config.key_for(slow)
        assert "timeout" in payload["failures"][0]["error"]
        # The failed point is never persisted; the good one is.
        assert store.get(config.key_for(fast)) is not None
        assert store.get(config.key_for(slow)) is None
    finally:
        manager.close()


def test_zero_retries_fails_on_the_first_timeout(tmp_path, monkeypatch):
    monkeypatch.setattr(jobs_module, "evaluate_shard",
                        lambda *a: time.sleep(120))
    manager = JobManager(store=None, workers=1, shard_size=4,
                         shard_timeout=0.3, max_retries=0)
    try:
        job = manager.submit(make_points((8,)), SweepConfig())
        assert job.wait(timeout=30)
        assert job.progress()["state"] == "failed"
        events = [e["event"] for e in job.events_since(0)]
        assert "shard_requeued" not in events
    finally:
        manager.close()
