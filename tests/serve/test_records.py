"""Record round-trips and the content-addressed key scheme."""

import pytest

from repro.explore import DesignPoint, ExplorationRunner, evaluate_point
from repro.flow.sweep import PipelinePoint
from repro.serve.records import (
    UnstorablePointError,
    exploration_key,
    point_from_dict,
    point_to_dict,
    record_matches,
    result_from_record,
    result_to_record,
    verify_key,
    verify_record,
    verify_summary_line,
)
from repro.serve.store import SCHEMA_VERSION

POINT = DesignPoint(design="saa2vga", binding="fifo", pixel_format="gray8",
                    frame_width=8, frame_height=4, capacity=8)
PIPE_POINT = PipelinePoint(topology="chain", stages=2, fifo_depth=4,
                           bus_width=8, frame_width=8, frame_height=4)


# -- points ---------------------------------------------------------------------


def test_design_point_round_trip():
    data = point_to_dict(POINT)
    assert data["family"] == "design"
    assert point_from_dict(data) == POINT


def test_pipeline_point_round_trip():
    data = point_to_dict(PIPE_POINT)
    assert data["family"] == "pipeline"
    assert point_from_dict(data) == PIPE_POINT


def test_unknown_point_family_is_unstorable():
    class DuckPoint:
        design = "custom"

    with pytest.raises(UnstorablePointError):
        point_to_dict(DuckPoint())
    with pytest.raises(UnstorablePointError):
        point_from_dict({"family": "martian"})


# -- keys -----------------------------------------------------------------------


def test_exploration_keys_are_stable_and_content_addressed():
    key = exploration_key(POINT, "compiled", False, 0, 1500)
    assert key == exploration_key(POINT, "compiled", False, 0, 1500)
    assert len(key) == 64 and set(key) <= set("0123456789abcdef")


def test_every_config_axis_changes_the_key():
    base = exploration_key(POINT, "compiled", False, 0, 1500)
    assert exploration_key(POINT, "event", False, 0, 1500) != base
    assert exploration_key(POINT, "compiled", True, 0, 1500) != base
    assert exploration_key(POINT, "compiled", False, 1, 1500) != base
    assert exploration_key(POINT, "compiled", False, 0, 999) != base
    other = DesignPoint(design="saa2vga", binding="sram",
                        pixel_format="gray8", frame_width=8, frame_height=4,
                        capacity=8)
    assert exploration_key(other, "compiled", False, 0, 1500) != base


def test_store_key_matches_the_runner_memo_normalisation():
    """CLI --store, the service and in-process sweeps share store entries."""
    runner = ExplorationRunner(strategy="auto")
    batched = ExplorationRunner(strategy="compiled-batched")
    assert runner.cache_strategy() == "compiled"
    assert batched.cache_strategy() == "compiled"
    key_auto = exploration_key(POINT, runner.cache_strategy(), False, 0, 1500)
    key_batched = exploration_key(POINT, batched.cache_strategy(), False, 0,
                                  1500)
    assert key_auto == key_batched


def test_verify_keys_pin_the_resolved_cycle_budget():
    key = verify_key("queue/fifo", 0, 2000, "event")
    assert key == verify_key("queue/fifo", 0, 2000, "event")
    assert verify_key("queue/fifo", 1, 2000, "event") != key
    assert verify_key("queue/fifo", 0, 2001, "event") != key
    assert verify_key("queue/fifo", 0, 2000, "compiled") != key
    assert verify_key("queue/sram", 0, 2000, "event") != key


# -- exploration records --------------------------------------------------------


def test_result_record_round_trip_is_lossless():
    import json

    result = evaluate_point(POINT, strategy="compiled")
    key = exploration_key(POINT, "compiled", False, 0, 1500)
    record = result_to_record(result, key, {"strategy": "compiled"})
    assert record["schema"] == SCHEMA_VERSION
    assert record_matches(record, "exploration")
    # Through the wire/disk format, not just the in-memory dict.
    record = json.loads(json.dumps(record))
    rebuilt = result_from_record(record)
    assert rebuilt == result, \
        "a cached record must be indistinguishable from a fresh simulation"
    assert rebuilt.row() == result.row()


def test_record_matches_rejects_foreign_shapes():
    assert not record_matches(None, "exploration")
    assert not record_matches({"kind": "verify"}, "exploration")
    assert not record_matches({"kind": "exploration", "result": []},
                              "exploration")


# -- verification records -------------------------------------------------------


def test_verify_record_replays_the_session_summary():
    from repro.verify import verify
    from repro.verify.coverage import CoverageDB

    result = verify("queue/fifo", seed=0, strategy="compiled")
    key = verify_key("queue/fifo", 0, result.cycles, "compiled")
    record = verify_record(result, key)
    assert record_matches(record, "verify")

    line = verify_summary_line(record, suffix="")
    assert line == result.summary(), \
        "a cached session must print exactly what the live one printed"

    # The stored covergroup merges into a CoverageDB like the live one.
    live, cached = CoverageDB(), CoverageDB()
    live.add(result.coverage)
    cached.add(record["result"]["coverage_group"])
    assert cached.to_json() == live.to_json()
