"""``GET /metrics`` and the telemetry-enriched ``GET /healthz``.

Live-socket tests against a real :class:`SweepServer`, mirroring
``tests/serve/test_server.py``.  Counter assertions are delta-based: the
registry is process-global and other suites legitimately bump it.
"""

import json
import urllib.request

from repro.obs.metrics import REGISTRY
from repro.serve import SweepServer

SPEC = {"designs": ["saa2vga"], "bindings": ["fifo", "sram"],
        "capacities": [8], "frames": ["8x4"]}


def _get(url: str):
    with urllib.request.urlopen(url, timeout=10) as response:
        return response.headers, response.read().decode("utf-8")


def _get_json(url: str) -> dict:
    return json.loads(_get(url)[1])


def _submit(url: str, body: dict) -> dict:
    request = urllib.request.Request(
        f"{url}/sweeps", data=json.dumps(body).encode(),
        headers={"Content-Type": "application/json"}, method="POST")
    with urllib.request.urlopen(request, timeout=30) as response:
        return json.loads(response.read().decode("utf-8"))


def test_metrics_serves_prometheus_exposition(tmp_path):
    with SweepServer(tmp_path / "store", workers=1) as server:
        _submit(server.url, {"spec": SPEC})
        headers, text = _get(f"{server.url}/metrics")
        assert headers["Content-Type"].startswith("text/plain")
        assert "version=0.0.4" in headers["Content-Type"]
        # the service's own activity is visible through the registry
        assert "# TYPE repro_sweep_jobs_submitted_total counter" in text
        assert "# TYPE repro_store_entries gauge" in text
        assert "repro_sweep_jobs 1" in text
        assert "repro_uptime_seconds" in text


def test_metrics_counters_track_service_activity(tmp_path):
    with SweepServer(tmp_path / "store", workers=1) as server:
        before_jobs = REGISTRY.value("sweep_jobs_submitted")
        before_shards = REGISTRY.value("sweep_shards_dispatched")
        job = _submit(server.url, {"spec": SPEC})
        status = _wait_done(server, job["id"])
        assert status["state"] == "done"
        assert REGISTRY.value("sweep_jobs_submitted") == before_jobs + 1
        assert REGISTRY.value("sweep_shards_dispatched") >= before_shards + 1
        hist = REGISTRY.histogram("sweep_shard_seconds")
        assert hist is not None and hist["count"] >= 1


def test_metrics_match_healthz_counters(tmp_path):
    """The same registry serves both endpoints — scrape agreement."""
    with SweepServer(tmp_path / "store", workers=1) as server:
        job = _submit(server.url, {"spec": SPEC})
        _wait_done(server, job["id"])
        payload = _get_json(f"{server.url}/healthz")
        _, text = _get(f"{server.url}/metrics")
        # NB: simulator_constructions lives in the *worker* processes'
        # registries, so only server-side counters can agree here.
        for name in ("sweep_jobs_submitted", "store_puts",
                     "sweep_shards_dispatched"):
            assert name in payload["counters"], name
            assert f"repro_{name}_total {payload['counters'][name]}" in text


def test_healthz_reports_queue_depth_and_counters(tmp_path):
    with SweepServer(tmp_path / "store", workers=1) as server:
        payload = _get_json(f"{server.url}/healthz")
        # pre-PR keys survive...
        assert payload["ok"] is True
        assert payload["jobs"] == 0
        assert payload["store"]["entries"] == 0
        # ...and the telemetry additions ride along
        assert payload["queue_depth"] == 0
        assert isinstance(payload["counters"], dict)


def test_job_status_carries_shard_timing(tmp_path):
    with SweepServer(tmp_path / "store", workers=1) as server:
        job = _submit(server.url, {"spec": SPEC})
        status = _wait_done(server, job["id"])
        timing = status["timing"]
        assert timing["elapsed_s"] >= 0
        shards = timing["shards"]
        assert shards["count"] >= 1
        assert shards["total_s"] > 0
        assert shards["max_s"] >= shards["mean_s"] > 0

        # warm re-submission: all cached, no shard ever dispatched
        job2 = _submit(server.url, {"spec": SPEC})
        status2 = _wait_done(server, job2["id"])
        assert status2["cached"] == status2["total"]
        assert status2["timing"]["shards"]["count"] == 0


def _wait_done(server: SweepServer, job_id: str) -> dict:
    job = server.manager.job(job_id)
    assert job is not None and job.wait(timeout=120)
    return job.progress()
