"""Robustness of the content-addressed result store.

The store's contract is "recompute on ``None``, never crash on disk
state": corrupt blobs quarantine, stale schemas invalidate cleanly,
concurrent writers never tear a record, and the LRU cap evicts the least
recently *used* entry.
"""

import json
import threading

import pytest

from repro.serve.store import SCHEMA_VERSION, ResultStore, StoreError

KEY_A = "aa" + "0" * 62
KEY_B = "bb" + "0" * 62
KEY_C = "cc" + "0" * 62


def make_record(key, payload=0):
    return {"schema": SCHEMA_VERSION, "kind": "test", "key": key,
            "result": {"payload": payload}}


# -- basic round trip -----------------------------------------------------------


def test_put_get_round_trip(tmp_path):
    store = ResultStore(tmp_path)
    assert store.get(KEY_A) is None
    store.put(KEY_A, make_record(KEY_A, payload=7))
    assert store.get(KEY_A)["result"]["payload"] == 7
    assert KEY_A in store
    assert store.keys() == [KEY_A]
    assert store.stats()["entries"] == 1
    assert store.stats()["hits"] == 1
    assert store.stats()["misses"] == 1


def test_malformed_keys_are_rejected(tmp_path):
    store = ResultStore(tmp_path)
    for bad in ("", "short", "XYZ" + "0" * 61, "../../../etc/passwd", None):
        with pytest.raises(StoreError):
            store.path_for(bad)


def test_put_refuses_mismatched_envelopes(tmp_path):
    store = ResultStore(tmp_path)
    with pytest.raises(StoreError):
        store.put(KEY_A, make_record(KEY_B))  # wrong key
    with pytest.raises(StoreError):
        store.put(KEY_A, {**make_record(KEY_A), "schema": 999})


def test_invalidate_drops_the_record(tmp_path):
    store = ResultStore(tmp_path)
    store.put(KEY_A, make_record(KEY_A))
    assert store.invalidate(KEY_A) is True
    assert store.get(KEY_A) is None
    assert store.invalidate(KEY_A) is False


# -- corruption -----------------------------------------------------------------


def test_corrupt_blob_is_quarantined_and_reads_as_miss(tmp_path):
    store = ResultStore(tmp_path)
    store.put(KEY_A, make_record(KEY_A))
    store.path_for(KEY_A).write_text("{ torn json", encoding="utf-8")

    assert store.get(KEY_A) is None  # miss, not an exception
    assert store.stats()["quarantined"] == 1
    quarantined = list((tmp_path / "quarantine").iterdir())
    assert len(quarantined) == 1
    assert quarantined[0].read_text(encoding="utf-8") == "{ torn json"
    # The slot is free again: a re-computed record persists normally.
    store.put(KEY_A, make_record(KEY_A, payload=2))
    assert store.get(KEY_A)["result"]["payload"] == 2


def test_repeated_corruption_keeps_all_the_evidence(tmp_path):
    store = ResultStore(tmp_path)
    for n in range(3):
        store.put(KEY_A, make_record(KEY_A))
        store.path_for(KEY_A).write_text(f"garbage {n}", encoding="utf-8")
        assert store.get(KEY_A) is None
    assert len(list((tmp_path / "quarantine").iterdir())) == 3


def test_non_object_json_blob_is_quarantined(tmp_path):
    store = ResultStore(tmp_path)
    path = store.path_for(KEY_A)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps([1, 2, 3]), encoding="utf-8")
    assert store.get(KEY_A) is None
    assert store.stats()["quarantined"] == 1


# -- schema + key validation ----------------------------------------------------


def test_schema_bump_invalidates_cleanly(tmp_path):
    store = ResultStore(tmp_path)
    store.put(KEY_A, make_record(KEY_A))
    # Simulate a blob written by an older (or newer) code generation.
    stale = {**make_record(KEY_A), "schema": SCHEMA_VERSION + 1}
    store.path_for(KEY_A).write_text(json.dumps(stale), encoding="utf-8")

    assert store.get(KEY_A) is None
    assert store.stats()["invalidated"] == 1
    assert not store.path_for(KEY_A).exists(), \
        "stale-schema blobs must be deleted, not quarantined"


def test_blob_copied_to_the_wrong_path_cannot_alias_another_key(tmp_path):
    store = ResultStore(tmp_path)
    store.put(KEY_A, make_record(KEY_A))
    path_b = store.path_for(KEY_B)
    path_b.parent.mkdir(parents=True, exist_ok=True)
    path_b.write_text(store.path_for(KEY_A).read_text(encoding="utf-8"),
                      encoding="utf-8")
    assert store.get(KEY_B) is None  # embedded key wins over the path
    assert store.get(KEY_A) is not None


# -- concurrency ----------------------------------------------------------------


def test_concurrent_writers_and_readers_never_see_a_torn_record(tmp_path):
    store = ResultStore(tmp_path)
    keys = [f"{i:02x}" + "d" * 62 for i in range(4)]
    errors = []

    def writer(worker):
        try:
            for round_no in range(25):
                for key in keys:
                    store.put(key, make_record(key, payload=worker))
        except Exception as exc:  # pragma: no cover - failure diagnostics
            errors.append(exc)

    def reader():
        try:
            for _ in range(200):
                for key in keys:
                    record = store.get(key)
                    if record is not None:
                        # Atomic replace => always a complete valid record.
                        assert record["key"] == key
                        assert "payload" in record["result"]
        except Exception as exc:  # pragma: no cover - failure diagnostics
            errors.append(exc)

    threads = [threading.Thread(target=writer, args=(n,)) for n in range(3)]
    threads += [threading.Thread(target=reader) for _ in range(3)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()

    assert errors == []
    assert store.stats()["quarantined"] == 0
    for key in keys:
        assert store.get(key)["result"]["payload"] in (0, 1, 2)


def test_no_temp_files_left_behind(tmp_path):
    store = ResultStore(tmp_path)
    for key in (KEY_A, KEY_B, KEY_C):
        store.put(key, make_record(key))
    leftovers = [p for p in (tmp_path / "objects").rglob("*")
                 if p.is_file() and p.suffix != ".json"]
    assert leftovers == []


# -- LRU cap --------------------------------------------------------------------


def test_lru_cap_evicts_the_least_recently_used(tmp_path):
    store = ResultStore(tmp_path, max_entries=2)
    store.put(KEY_A, make_record(KEY_A))
    store.put(KEY_B, make_record(KEY_B))
    # Recency is the read/write clock: make A fresher than B...
    future = store.path_for(KEY_B).stat().st_mtime + 10
    import os

    os.utime(store.path_for(KEY_A), (future, future))
    store.put(KEY_C, make_record(KEY_C))  # ...so the third put evicts B.
    assert store.get(KEY_B) is None
    assert store.get(KEY_A) is not None
    assert store.get(KEY_C) is not None
    assert store.stats()["evictions"] == 1
    assert len(store) == 2


def test_unbounded_store_never_evicts(tmp_path):
    store = ResultStore(tmp_path)
    for i in range(10):
        key = f"{i:02x}" + "e" * 62
        store.put(key, make_record(key))
    assert len(store) == 10
    assert store.stats()["evictions"] == 0


def test_bad_cap_is_rejected(tmp_path):
    with pytest.raises(StoreError):
        ResultStore(tmp_path, max_entries=0)
