"""Behavioural tests of the associative-array container (CAM binding)."""

from repro.core import make_container
from repro.rtl import Component, Simulator


def build(capacity=4, key_width=8, value_width=8):
    top = Component("top")
    assoc = top.child(make_container("assoc_array", "cam", "aa",
                                     key_width=key_width,
                                     value_width=value_width,
                                     capacity=capacity))
    return assoc, Simulator(top)


def insert(sim, assoc, key, value):
    port = assoc.port
    port.insert_key.force(key)
    port.insert_value.force(value)
    port.insert.force(1)
    sim.step()
    port.insert.force(0)
    sim.step()


def lookup(sim, assoc, key):
    port = assoc.port
    port.key.force(key)
    port.lookup.force(1)
    sim.settle()
    found = bool(port.found.value)
    value = port.value.value
    done = port.done.value
    port.lookup.force(0)
    sim.step()
    return found, value, done


def remove(sim, assoc, key):
    port = assoc.port
    port.remove_key.force(key)
    port.remove.force(1)
    sim.step()
    port.remove.force(0)
    sim.step()


def test_insert_then_lookup():
    assoc, sim = build()
    insert(sim, assoc, 0x11, 0xAA)
    insert(sim, assoc, 0x22, 0xBB)
    found, value, done = lookup(sim, assoc, 0x22)
    assert (found, value) == (True, 0xBB)
    assert done == 1  # lookups complete combinationally
    found, _value, _done = lookup(sim, assoc, 0x33)
    assert found is False


def test_lookup_requires_strobe():
    assoc, sim = build()
    insert(sim, assoc, 1, 2)
    assoc.port.key.force(1)
    assoc.port.lookup.force(0)
    sim.settle()
    assert assoc.port.found.value == 0


def test_insert_updates_existing_key():
    assoc, sim = build()
    insert(sim, assoc, 5, 50)
    insert(sim, assoc, 5, 55)
    assert assoc.entries() == {5: 55}
    assert assoc.occupancy == 1


def test_remove_then_lookup_misses():
    assoc, sim = build()
    insert(sim, assoc, 7, 70)
    remove(sim, assoc, 7)
    found, _value, _done = lookup(sim, assoc, 7)
    assert found is False
    assert assoc.occupancy == 0


def test_full_flag_blocks_new_keys():
    assoc, sim = build(capacity=2)
    insert(sim, assoc, 1, 10)
    insert(sim, assoc, 2, 20)
    sim.settle()
    assert assoc.port.full.value == 1
    insert(sim, assoc, 3, 30)
    assert 3 not in assoc.entries()


def test_write_done_pulses_after_insert():
    assoc, sim = build()
    port = assoc.port
    port.insert_key.force(1)
    port.insert_value.force(2)
    port.insert.force(1)
    sim.step()
    port.insert.force(0)
    sim.settle()
    assert port.done.value == 1
    sim.step()
    sim.settle()
    assert port.done.value == 0


def test_snapshot_sorted_pairs():
    assoc, sim = build()
    insert(sim, assoc, 9, 90)
    insert(sim, assoc, 3, 30)
    assert assoc.snapshot() == [(3, 30), (9, 90)]


def test_classification_random_only():
    assoc, _sim = build()
    row = type(assoc).classification_row()
    assert row["random_input"] == "yes"
    assert row["seq_input"] == "-"
    assert row["seq_output"] == "-"
