"""Behavioural tests of the vector container bindings and their iterators."""

import pytest

from repro.core import make_container, make_iterator
from repro.rtl import Component, Simulator
from repro.testing import iterator_read, iterator_seek, iterator_write

VECTOR_BINDINGS = ["bram", "sram", "registers"]


def build(binding, capacity=8, width=8, traversal="random", readable=True,
          writable=True, start=None):
    top = Component("top")
    vector = top.child(make_container("vector", binding, "vec", width=width,
                                      capacity=capacity))
    kwargs = {} if start is None else {"start": start}
    iterator_cls_kwargs = kwargs
    iterator = top.child(make_iterator(vector, traversal, readable=readable,
                                       writable=writable, name="it")
                         if not iterator_cls_kwargs else
                         _make_with_start(vector, traversal, readable, writable,
                                          start))
    return top, vector, iterator, Simulator(top)


def _make_with_start(vector, traversal, readable, writable, start):
    from repro.core.iterator import ITERATOR_REGISTRY
    cls = ITERATOR_REGISTRY[(vector.kind, traversal, readable, writable)]
    return cls("it", vector, start=start)


class TestRandomIterator:
    @pytest.mark.parametrize("binding", VECTOR_BINDINGS)
    def test_write_then_read_back_sequentially(self, binding):
        _top, vector, iterator, sim = build(binding, capacity=6)
        for value in [11, 22, 33, 44, 55, 66]:
            iterator_write(sim, iterator.iface, value)
        assert vector.snapshot() == [11, 22, 33, 44, 55, 66]
        iterator_seek(sim, iterator.iface, 0)
        values = [iterator_read(sim, iterator.iface) for _ in range(6)]
        assert values == [11, 22, 33, 44, 55, 66]

    @pytest.mark.parametrize("binding", VECTOR_BINDINGS)
    def test_index_operation_sets_position(self, binding):
        _top, vector, iterator, sim = build(binding, capacity=8)
        vector.load([i * 10 for i in range(8)])
        iterator_seek(sim, iterator.iface, 5)
        assert iterator.position == 5
        assert iterator_read(sim, iterator.iface, advance=False) == 50
        assert iterator.position == 5  # read without inc keeps the position

    @pytest.mark.parametrize("binding", VECTOR_BINDINGS)
    def test_read_with_advance_moves_forward(self, binding):
        _top, vector, iterator, sim = build(binding, capacity=4)
        vector.load([9, 8, 7, 6])
        assert [iterator_read(sim, iterator.iface) for _ in range(4)] == [9, 8, 7, 6]
        assert iterator.position == 0  # wrapped around the capacity

    def test_position_wraps_modulo_capacity(self):
        _top, vector, iterator, sim = build("bram", capacity=4)
        iterator_seek(sim, iterator.iface, 7)
        assert iterator.position == 3


class TestDirectionalIterators:
    def test_backward_iterator_walks_from_the_end(self):
        top = Component("top")
        vector = top.child(make_container("vector", "bram", "vec", width=8,
                                          capacity=5))
        vector.load([1, 2, 3, 4, 5])
        iterator = top.child(make_iterator(vector, "backward", readable=True,
                                           name="bit"))
        sim = Simulator(top)
        values = []
        for _ in range(5):
            # Read the current element, then step backwards.
            iface = iterator.iface
            for _ in range(50):
                if iface.can_read.value:
                    break
                sim.step()
            iface.read.force(1)
            iface.dec.force(1)
            while not iface.done.value:
                sim.step()
            values.append(iface.rdata.value)
            iface.read.force(0)
            iface.dec.force(0)
            sim.step()
        assert values == [5, 4, 3, 2, 1]

    def test_forward_output_iterator_fills_from_zero(self):
        top = Component("top")
        vector = top.child(make_container("vector", "registers", "vec", width=8,
                                          capacity=4))
        iterator = top.child(make_iterator(vector, "forward", writable=True,
                                           name="wit"))
        sim = Simulator(top)
        for value in [4, 3, 2, 1]:
            iterator_write(sim, iterator.iface, value)
        assert vector.snapshot() == [4, 3, 2, 1]

    def test_bidirectional_iterator_ignores_index(self):
        top = Component("top")
        vector = top.child(make_container("vector", "bram", "vec", width=8,
                                          capacity=8))
        vector.load(list(range(8)))
        iterator = top.child(make_iterator(vector, "bidirectional", readable=True,
                                           writable=True, name="bidir"))
        sim = Simulator(top)
        iface = iterator.iface
        # An index strobe must not move a bidirectional iterator.
        iface.pos.force(6)
        iface.index.force(1)
        sim.step(4)
        iface.index.force(0)
        assert iterator.position == 0
        assert iterator_read(sim, iface) == 0


class TestVectorBindings:
    def test_registers_binding_costs_flip_flops(self):
        vector = make_container("vector", "registers", "vec", width=8, capacity=4)
        total_state = sum(comp.state_bits() for comp in vector.walk())
        assert total_state >= 32  # the storage itself is flip-flops

    def test_sram_binding_is_external(self):
        vector = make_container("vector", "sram", "vec", width=8, capacity=16)
        assert vector.external_storage is True
        assert vector.sram.external is True

    def test_backdoor_round_trip(self):
        for binding in VECTOR_BINDINGS:
            vector = make_container("vector", binding, "vec", width=8, capacity=4)
            vector.write_word(2, 0x5A)
            assert vector.read_word(2) == 0x5A
            assert vector.snapshot()[2] == 0x5A
