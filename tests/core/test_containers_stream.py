"""Behavioural tests of the stream containers (read/write buffers, queues).

Every binding of a FIFO-ordered container must behave identically at its
functional interface; only latency may differ.  Property tests push random
element sequences through each binding and require bit-exact, order-preserving
delivery.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core import make_container
from repro.rtl import Component, Simulator
from repro.testing import stream_drain, stream_feed, stream_feed_and_drain

BUFFER_BINDINGS = ["fifo", "sram"]


def wrap(container):
    """Containers are simulated under a top so the simulator sees all children."""
    top = Component("top")
    top.child(container)
    return container, Simulator(top)


class TestReadBuffer:
    @pytest.mark.parametrize("binding", BUFFER_BINDINGS)
    def test_fifo_order_preserved(self, binding):
        rb, sim = wrap(make_container("read_buffer", binding, "rb", width=8,
                                      capacity=16))
        data = list(range(1, 25))
        received = stream_feed_and_drain(sim, rb.fill, rb.source, data)
        assert received == data

    @pytest.mark.parametrize("binding", BUFFER_BINDINGS)
    def test_backpressure_when_full(self, binding):
        rb, sim = wrap(make_container("read_buffer", binding, "rb", width=8,
                                      capacity=4))
        stream_feed(sim, rb.fill, [1, 2, 3, 4])
        # Give the container time to absorb everything it can, then check that
        # it refuses further elements while nothing is drained.
        sim.step(50)
        occupied = rb.occupancy
        assert occupied >= 4
        assert rb.fill.ready.value == 0 or occupied < rb.capacity + 2

    @pytest.mark.parametrize("binding", BUFFER_BINDINGS)
    def test_occupancy_and_snapshot(self, binding):
        rb, sim = wrap(make_container("read_buffer", binding, "rb", width=8,
                                      capacity=8))
        stream_feed(sim, rb.fill, [5, 6, 7])
        sim.step(40)  # let SRAM bindings finish their internal transfers
        assert rb.occupancy == 3
        assert rb.snapshot() == [5, 6, 7]

    def test_width_masking(self):
        rb, sim = wrap(make_container("read_buffer", "fifo", "rb", width=4,
                                      capacity=8))
        received = stream_feed_and_drain(sim, rb.fill, rb.source, [0xFF, 0x12])
        assert received == [0xF, 0x2]


class TestWriteBuffer:
    @pytest.mark.parametrize("binding", BUFFER_BINDINGS)
    def test_fifo_order_preserved(self, binding):
        wb, sim = wrap(make_container("write_buffer", binding, "wb", width=8,
                                      capacity=16))
        data = [3, 1, 4, 1, 5, 9, 2, 6, 5, 3, 5]
        received = stream_feed_and_drain(sim, wb.sink, wb.drain, data)
        assert received == data

    @pytest.mark.parametrize("binding", BUFFER_BINDINGS)
    def test_drain_empty_is_silent(self, binding):
        wb, sim = wrap(make_container("write_buffer", binding, "wb", width=8,
                                      capacity=8))
        sim.step(20)
        assert wb.drain.valid.value == 0


class TestQueue:
    @pytest.mark.parametrize("binding", BUFFER_BINDINGS)
    def test_fifo_order_preserved(self, binding):
        queue, sim = wrap(make_container("queue", binding, "q", width=8,
                                         capacity=16))
        data = list(range(40, 60))
        received = stream_feed_and_drain(sim, queue.sink, queue.source, data)
        assert received == data

    def test_interleaved_producer_consumer(self):
        queue, sim = wrap(make_container("queue", "fifo", "q", width=8, capacity=4))
        sent, received = [], []
        for burst in range(5):
            values = [burst * 3 + i for i in range(3)]
            stream_feed(sim, queue.sink, values)
            sent.extend(values)
            received.extend(stream_drain(sim, queue.source, 3))
        assert received == sent


@settings(max_examples=15, deadline=None)
@given(data=st.lists(st.integers(min_value=0, max_value=255), min_size=1,
                     max_size=60),
       binding=st.sampled_from(BUFFER_BINDINGS))
def test_any_element_sequence_survives_a_round_trip(data, binding):
    """Property: for every binding, what goes in comes out unchanged and in order."""
    rb, sim = wrap(make_container("read_buffer", binding, "rb", width=8,
                                  capacity=8))
    assert stream_feed_and_drain(sim, rb.fill, rb.source, data) == data


@settings(max_examples=10, deadline=None)
@given(data=st.lists(st.integers(min_value=0, max_value=255), min_size=1,
                     max_size=40))
def test_sram_latency_does_not_affect_correctness(data):
    """Property: slower external memories change timing, never data."""
    rb, sim = wrap(make_container("read_buffer", "sram", "rb", width=8,
                                  capacity=8, sram_latency=4))
    assert stream_feed_and_drain(sim, rb.fill, rb.source, data,
                                 max_cycles=400_000) == data
