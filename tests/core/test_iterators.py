"""Tests of iterator metadata: supported operations (Table 2), transparency,
registration keys and error handling."""

import pytest

from repro.core import IteratorError, IteratorOp, make_container, make_iterator
from repro.core.iterators import (
    Line3WindowIterator,
    QueueForwardInputIterator,
    QueueForwardOutputIterator,
    ReadBufferForwardIterator,
    StackBackwardOutputIterator,
    StackForwardInputIterator,
    VectorBackwardInputIterator,
    VectorBidirectionalIterator,
    VectorForwardInputIterator,
    VectorForwardOutputIterator,
    VectorRandomIterator,
    WriteBufferForwardIterator,
)

INC, DEC, READ, WRITE, INDEX = (IteratorOp.INC, IteratorOp.DEC, IteratorOp.READ,
                                IteratorOp.WRITE, IteratorOp.INDEX)


def test_forward_input_iterator_operations():
    ops = ReadBufferForwardIterator.supported_ops()
    assert ops == {INC, READ}
    assert ReadBufferForwardIterator.supports(INC)
    assert not ReadBufferForwardIterator.supports(DEC)
    assert not ReadBufferForwardIterator.supports(INDEX)


def test_forward_output_iterator_operations():
    assert WriteBufferForwardIterator.supported_ops() == {INC, WRITE}
    assert QueueForwardOutputIterator.supported_ops() == {INC, WRITE}


def test_queue_input_iterator_operations():
    assert QueueForwardInputIterator.supported_ops() == {INC, READ}


def test_stack_iterators_follow_table1_traversals():
    assert StackForwardInputIterator.supported_ops() == {INC, READ}
    # The stack's output traversal is backward, so its advance strobe is dec.
    assert StackBackwardOutputIterator.supported_ops() == {DEC, WRITE}
    assert StackBackwardOutputIterator.traversal == "backward"


def test_random_iterator_has_full_table2_set():
    assert VectorRandomIterator.supported_ops() == {INC, DEC, READ, WRITE, INDEX}


def test_bidirectional_iterator_lacks_index():
    assert VectorBidirectionalIterator.supported_ops() == {INC, DEC, READ, WRITE}


def test_directional_vector_iterators():
    assert VectorForwardInputIterator.supported_ops() == {INC, READ}
    assert VectorForwardOutputIterator.supported_ops() == {INC, WRITE}
    assert VectorBackwardInputIterator.supported_ops() == {DEC, READ}


def test_window_iterator_reads_and_advances():
    ops = Line3WindowIterator.supported_ops()
    assert INC in ops and READ in ops
    assert WRITE not in ops


def test_stream_iterators_are_transparent_wrappers():
    """The paper: simple iterators are wrappers dissolved at synthesis."""
    for cls in (ReadBufferForwardIterator, WriteBufferForwardIterator,
                QueueForwardInputIterator, QueueForwardOutputIterator,
                StackForwardInputIterator, StackBackwardOutputIterator,
                Line3WindowIterator):
        assert cls.transparent is True


def test_vector_iterators_keep_real_state():
    """Position registers and access FSMs are genuine logic, not wrappers."""
    for cls in (VectorRandomIterator, VectorBidirectionalIterator,
                VectorForwardInputIterator, VectorForwardOutputIterator,
                VectorBackwardInputIterator):
        assert cls.transparent is False


def test_vector_iterator_instances_declare_registers():
    vector = make_container("vector", "bram", "vec", width=8, capacity=16)
    iterator = make_iterator(vector, "random", readable=True, writable=True)
    assert iterator.state_bits() > 0
    assert iterator.container is vector


def test_stream_iterator_instances_declare_no_registers():
    rb = make_container("read_buffer", "fifo", "rb", width=8, capacity=8)
    iterator = make_iterator(rb, "forward", readable=True)
    assert iterator.state_bits() == 0


def test_describe_rows_are_complete():
    row = VectorRandomIterator.describe()
    assert row["container"] == "vector"
    assert row["traversal"] == "random"
    assert "index" in row["ops"]


def test_window_iterator_requires_window_capable_binding():
    rb = make_container("read_buffer", "fifo", "rb", width=8, capacity=8)
    with pytest.raises(IteratorError):
        Line3WindowIterator("win_it", rb)


def test_window_iterator_over_linebuffer_binding():
    rb = make_container("read_buffer", "linebuffer3", "rb", width=8, line_width=8)
    iterator = Line3WindowIterator("win_it", rb)
    assert "rdata_top" in iterator.iface
