"""Behavioural tests of the general 3x3 convolution algorithm and its kernels."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core import (
    EDGE_KERNEL,
    IDENTITY_KERNEL,
    SHARPEN_KERNEL,
    SMOOTH_KERNEL,
    Conv3x3Algorithm,
    Kernel3x3,
    golden_convolve3x3,
    make_container,
    make_iterator,
)
from repro.rtl import Component, Simulator
from repro.testing import stream_feed_and_drain
from repro.video import flatten, golden_blur3x3, gradient_frame, random_frame


class TestKernel3x3:
    def test_requires_nine_weights(self):
        with pytest.raises(ValueError):
            Kernel3x3([1, 2, 3])
        with pytest.raises(ValueError):
            Kernel3x3([1] * 9, shift=-1)

    def test_apply_identity(self):
        window = list(range(9))
        assert IDENTITY_KERNEL.apply(window, 255) == window[4]

    def test_apply_clamps_to_range(self):
        assert SHARPEN_KERNEL.apply([0, 0, 0, 0, 255, 0, 0, 0, 0], 255) == 255
        assert EDGE_KERNEL.apply([255, 255, 255, 255, 0, 255, 255, 255, 255], 255) == 0

    def test_gain(self):
        assert SMOOTH_KERNEL.gain == pytest.approx(1.0)
        assert SHARPEN_KERNEL.gain == pytest.approx(1.0)
        assert EDGE_KERNEL.gain == pytest.approx(0.0)

    def test_estimated_luts_positive_and_scales(self):
        assert SMOOTH_KERNEL.estimated_luts(8) > 0
        assert SMOOTH_KERNEL.estimated_luts(16) > SMOOTH_KERNEL.estimated_luts(8)

    def test_window_size_checked(self):
        with pytest.raises(ValueError):
            IDENTITY_KERNEL.apply([1, 2, 3], 255)


def build_conv_pipeline(line_width, kernel, width=8, out_capacity=32):
    top = Component("top")
    rb = top.child(make_container("read_buffer", "linebuffer3", "rb", width=width,
                                  line_width=line_width))
    wb = top.child(make_container("write_buffer", "fifo", "wb", width=width,
                                  capacity=out_capacity))
    win_it = top.child(make_iterator(rb, "window", readable=True, name="win_it"))
    out_it = top.child(make_iterator(wb, "forward", writable=True, name="out_it"))
    conv = top.child(Conv3x3Algorithm("conv", win_it, out_it,
                                      line_width=line_width, kernel=kernel))
    return top, rb, wb, conv, Simulator(top)


def run_conv(frame, kernel):
    width = len(frame[0])
    height = len(frame)
    golden = flatten(golden_convolve3x3(frame, kernel))
    _top, rb, wb, conv, sim = build_conv_pipeline(width, kernel)
    received = stream_feed_and_drain(sim, rb.fill, wb.drain, flatten(frame),
                                     expected=(width - 2) * (height - 2))
    return received, golden, conv


@pytest.mark.parametrize("kernel", [IDENTITY_KERNEL, SMOOTH_KERNEL,
                                    SHARPEN_KERNEL, EDGE_KERNEL],
                         ids=lambda k: k.name)
def test_convolution_matches_golden_model(kernel):
    frame = random_frame(12, 8, seed=17)
    received, golden, conv = run_conv(frame, kernel)
    assert received == golden
    assert conv.elements_processed == len(golden)


def test_identity_kernel_reproduces_interior_pixels():
    frame = random_frame(10, 6, seed=23)
    received, _golden, _conv = run_conv(frame, IDENTITY_KERNEL)
    interior = flatten([row[1:-1] for row in frame[1:-1]])
    assert received == interior


def test_edge_kernel_is_zero_on_flat_regions():
    frame = [[77] * 10 for _ in range(6)]
    received, _golden, _conv = run_conv(frame, EDGE_KERNEL)
    assert set(received) == {0}


def test_smooth_kernel_tracks_box_blur_on_smooth_input():
    frame = gradient_frame(12, 8)
    received, _golden, _conv = run_conv(frame, SMOOTH_KERNEL)
    box = flatten(golden_blur3x3(frame))
    assert len(received) == len(box)
    assert all(abs(a - b) <= 2 for a, b in zip(received, box))


def test_custom_kernel_with_asymmetric_weights():
    # Horizontal gradient detector (Sobel-like column weights, column-major order).
    kernel = Kernel3x3([-1, -2, -1, 0, 0, 0, 1, 2, 1], shift=0, name="sobel_x")
    frame = [[x * 10 for x in range(8)] for _ in range(6)]
    received, golden, _conv = run_conv(frame, kernel)
    assert received == golden
    # A constant horizontal ramp has a uniform positive response:
    # weight sum per side is 4, the ramp step is 10, and the window spans
    # two steps, so the response is 4 * 10 * 2 = 80.
    assert len(set(received)) == 1
    assert received[0] == 80


def test_algorithm_validation():
    top = Component("top")
    rb = top.child(make_container("read_buffer", "fifo", "rb", width=8, capacity=8))
    wb = top.child(make_container("write_buffer", "fifo", "wb", width=8, capacity=8))
    rit = top.child(make_iterator(rb, "forward", readable=True, name="rit"))
    wit = top.child(make_iterator(wb, "forward", writable=True, name="wit"))
    with pytest.raises(TypeError):
        Conv3x3Algorithm("bad", rit, wit, line_width=8, kernel=IDENTITY_KERNEL)


def test_logic_cost_reflects_kernel_complexity():
    frame_width = 12
    _top, _rb, _wb, smooth, _sim = build_conv_pipeline(frame_width, SMOOTH_KERNEL)
    _top2, _rb2, _wb2, ident, _sim2 = build_conv_pipeline(frame_width, IDENTITY_KERNEL)
    assert smooth.logic_cost_luts >= ident.logic_cost_luts


def test_golden_convolve_rejects_small_frames():
    with pytest.raises(ValueError):
        golden_convolve3x3([[1, 2], [3, 4]], IDENTITY_KERNEL)


@settings(max_examples=8, deadline=None)
@given(seed=st.integers(min_value=0, max_value=5000))
def test_property_smooth_convolution_equals_golden(seed):
    frame = random_frame(7, 5, seed=seed)
    received, golden, _conv = run_conv(frame, SMOOTH_KERNEL)
    assert received == golden
