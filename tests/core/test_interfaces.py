"""Tests for the functional interfaces and the Table 2 operation descriptors."""

from repro.core import (
    ITERATOR_OPERATIONS,
    IteratorIface,
    IteratorOp,
    StreamSinkIface,
    StreamSourceIface,
    Traversal,
    WindowIteratorIface,
    format_traversals,
)
from repro.core.interfaces import B, F, FB, NONE, AssocIface, RandomIface, WindowSourceIface
from repro.rtl import Component


def test_table2_operations_complete_and_verbatim():
    ops = {descriptor.op: descriptor for descriptor in ITERATOR_OPERATIONS}
    assert set(ops) == {IteratorOp.INC, IteratorOp.DEC, IteratorOp.READ,
                        IteratorOp.WRITE, IteratorOp.INDEX}
    assert ops[IteratorOp.INC].meaning == "move forward"
    assert ops[IteratorOp.DEC].meaning == "move backwards"
    assert ops[IteratorOp.READ].meaning == "get the element"
    assert ops[IteratorOp.WRITE].meaning == "put the element"
    assert ops[IteratorOp.INDEX].meaning == "set the current position"
    assert ops[IteratorOp.INDEX].applicability == "random"
    assert ops[IteratorOp.INC].applicability == "F / F, B"


def test_format_traversals():
    assert format_traversals(F) == "F"
    assert format_traversals(B) == "B"
    assert format_traversals(FB) == "F, B"
    assert format_traversals(NONE) == "-"


def test_traversal_enum_values():
    assert Traversal.FORWARD.value == "F"
    assert Traversal.BACKWARD.value == "B"


def test_stream_interfaces_declare_expected_signals():
    owner = Component("owner")
    source = StreamSourceIface(owner, width=8, name="src")
    sink = StreamSinkIface(owner, width=8, name="snk")
    assert set(source.signals()) == {"data", "valid", "pop"}
    assert set(sink.signals()) == {"data", "ready", "push"}
    assert source.data.width == 8
    assert sink.data.width == 8
    # All bundle signals are owned (and thus traced/estimated) by the owner.
    assert source.data in owner.signals
    assert sink.push in owner.signals


def test_window_interface_signals():
    owner = Component("owner")
    window = WindowSourceIface(owner, width=8, x_width=5, name="win")
    assert set(window.signals()) == {"col_top", "col_mid", "col_bot", "valid",
                                     "pop", "x"}
    assert window.x.width == 5


def test_random_and_assoc_interfaces():
    owner = Component("owner")
    ram = RandomIface(owner, addr_width=10, width=8, name="ram")
    assert set(ram.signals()) == {"en", "we", "addr", "wdata", "rdata", "done",
                                  "idle"}
    assert ram.addr.width == 10
    assert ram.idle.value == 1  # idle by default
    assoc = AssocIface(owner, key_width=4, value_width=8, name="assoc")
    assert "lookup" in assoc
    assert assoc.insert_key.width == 4
    assert assoc.insert_value.width == 8


def test_iterator_interface_canonical_signals():
    owner = Component("owner")
    iface = IteratorIface(owner, width=8, pos_width=6, name="it")
    expected = {"inc", "dec", "read", "write", "index", "pos", "wdata", "rdata",
                "done", "can_read", "can_write"}
    assert set(iface.signals()) == expected
    assert iface.pos.width == 6
    assert iface.wdata.width == 8


def test_window_iterator_interface_extends_canonical():
    owner = Component("owner")
    iface = WindowIteratorIface(owner, width=8, name="wit")
    assert "rdata_top" in iface
    assert "rdata_mid" in iface
    assert "rdata_bot" in iface
    assert "inc" in iface
    assert isinstance(iface, IteratorIface)
