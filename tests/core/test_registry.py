"""Tests for the container/iterator registries and the Table 1 classification."""

import pytest

from repro.core import (
    CONTAINER_KINDS,
    ContainerError,
    IteratorError,
    bindings_for,
    classification_table,
    container_kinds,
    iterator_catalog,
    iterators_for,
    lookup_binding,
    make_container,
    make_iterator,
)
from repro.core.containers import ReadBufferFIFO, ReadBufferSRAM


def test_all_table1_kinds_registered_in_order():
    assert container_kinds() == ["stack", "queue", "read_buffer", "write_buffer",
                                 "vector", "assoc_array"]


def test_classification_table_matches_paper_table1():
    table = {row["container"]: row for row in classification_table()}
    assert table["stack"] == {
        "container": "stack", "random_input": "-", "random_output": "-",
        "seq_input": "F", "seq_output": "B"}
    assert table["queue"]["seq_input"] == "F"
    assert table["queue"]["seq_output"] == "F"
    assert table["read buffer"]["seq_input"] == "F"
    assert table["read buffer"]["seq_output"] == "-"
    assert table["write buffer"]["seq_input"] == "-"
    assert table["write buffer"]["seq_output"] == "F"
    assert table["vector"]["random_input"] == "yes"
    assert table["vector"]["random_output"] == "yes"
    assert table["vector"]["seq_input"] == "F, B"
    assert table["vector"]["seq_output"] == "F, B"
    assert table["assoc array"]["random_input"] == "yes"
    assert table["assoc array"]["seq_input"] == "-"


def test_every_kind_has_at_least_one_binding():
    for kind in container_kinds():
        assert bindings_for(kind), f"kind {kind} has no registered binding"


def test_expected_bindings_present():
    assert set(bindings_for("read_buffer")) == {"fifo", "sram", "linebuffer3"}
    assert set(bindings_for("write_buffer")) == {"fifo", "sram"}
    assert set(bindings_for("queue")) == {"fifo", "sram"}
    assert set(bindings_for("stack")) == {"lifo", "sram"}
    assert set(bindings_for("vector")) == {"bram", "sram", "registers"}
    assert "cam" in bindings_for("assoc_array")


def test_lookup_binding_returns_concrete_class():
    assert lookup_binding("read_buffer", "fifo") is ReadBufferFIFO
    assert lookup_binding("read_buffer", "sram") is ReadBufferSRAM


def test_lookup_unknown_binding_raises():
    with pytest.raises(ContainerError):
        lookup_binding("read_buffer", "flash")


def test_make_container_factory():
    container = make_container("read_buffer", "fifo", "rb", width=8, capacity=16)
    assert isinstance(container, ReadBufferFIFO)
    assert container.width == 8
    assert container.capacity == 16


def test_make_container_validates_parameters():
    with pytest.raises(ContainerError):
        make_container("queue", "fifo", "q", width=0, capacity=8)
    with pytest.raises(ContainerError):
        make_container("queue", "fifo", "q", width=8, capacity=0)


def test_make_iterator_resolves_by_kind_not_binding():
    fifo_rb = make_container("read_buffer", "fifo", "rb1", width=8, capacity=8)
    sram_rb = make_container("read_buffer", "sram", "rb2", width=8, capacity=8)
    it_fifo = make_iterator(fifo_rb, "forward", readable=True)
    it_sram = make_iterator(sram_rb, "forward", readable=True)
    # Same concrete iterator class serves both bindings of the kind.
    assert type(it_fifo) is type(it_sram)


def test_make_iterator_unknown_role_raises():
    queue = make_container("queue", "fifo", "q", width=8, capacity=8)
    with pytest.raises(IteratorError):
        make_iterator(queue, "random", readable=True, writable=True)


def test_iterator_catalog_and_lookup():
    catalog = iterator_catalog()
    assert len(catalog) >= 10
    names = {entry["iterator"] for entry in catalog}
    assert "ReadBufferForwardIterator" in names
    assert "VectorRandomIterator" in names
    assert len(iterators_for("vector")) >= 5
    assert len(iterators_for("read_buffer")) >= 2


def test_kind_metadata_available_on_classes():
    for kind, cls in CONTAINER_KINDS.items():
        assert cls.kind == kind
        row = cls.classification_row()
        assert set(row) == {"container", "random_input", "random_output",
                            "seq_input", "seq_output"}
