"""Behavioural tests of the stack container bindings (LIFO core and SRAM)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core import make_container
from repro.rtl import Component, Simulator
from repro.testing import stream_drain, stream_feed

STACK_BINDINGS = ["lifo", "sram"]


def wrap(binding, capacity=8, width=8):
    top = Component("top")
    stack = top.child(make_container("stack", binding, "stack", width=width,
                                     capacity=capacity))
    return stack, Simulator(top)


@pytest.mark.parametrize("binding", STACK_BINDINGS)
def test_push_then_pop_reverses_order(binding):
    stack, sim = wrap(binding)
    data = [10, 20, 30, 40]
    stream_feed(sim, stack.sink, data)
    sim.step(100)  # allow the SRAM binding to finish its internal transfers
    assert stack.occupancy == len(data)
    popped = stream_drain(sim, stack.source, len(data), max_cycles=5_000)
    assert popped == list(reversed(data))


@pytest.mark.parametrize("binding", STACK_BINDINGS)
def test_interleaved_push_pop(binding):
    stack, sim = wrap(binding)
    stream_feed(sim, stack.sink, [1, 2])
    sim.step(60)
    assert stream_drain(sim, stack.source, 1, max_cycles=2_000) == [2]
    stream_feed(sim, stack.sink, [3])
    sim.step(60)
    assert stream_drain(sim, stack.source, 2, max_cycles=2_000) == [3, 1]


def test_lifo_binding_capacity_limit():
    stack, sim = wrap("lifo", capacity=4)
    stream_feed(sim, stack.sink, [1, 2, 3, 4])
    sim.step(5)
    assert stack.occupancy == 4
    assert stack.sink.ready.value == 0


@pytest.mark.parametrize("binding", STACK_BINDINGS)
def test_snapshot_lists_bottom_to_top(binding):
    stack, sim = wrap(binding)
    stream_feed(sim, stack.sink, [7, 8, 9])
    sim.step(100)
    assert stack.snapshot() == [7, 8, 9]


def test_classification_is_forward_in_backward_out():
    stack, _sim = wrap("lifo")
    row = type(stack).classification_row()
    assert row["seq_input"] == "F"
    assert row["seq_output"] == "B"


@settings(max_examples=10, deadline=None)
@given(data=st.lists(st.integers(min_value=0, max_value=255), min_size=1,
                     max_size=8))
def test_property_lifo_reversal_sram_binding(data):
    """Property: the SRAM-bound stack reverses any pushed sequence."""
    stack, sim = wrap("sram", capacity=16)
    stream_feed(sim, stack.sink, data, max_cycles=200_000)
    sim.step(len(data) * 30 + 50)
    popped = stream_drain(sim, stack.source, len(data), max_cycles=200_000)
    assert popped == list(reversed(data))
