"""Behavioural tests of the generic algorithms (copy, transform, reduce, find,
fill, generic copy) over multiple container bindings."""

import pytest

from repro.core import (
    CopyAlgorithm,
    FillAlgorithm,
    FindAlgorithm,
    GenericCopyAlgorithm,
    ReduceAlgorithm,
    TransformAlgorithm,
    gain,
    invert,
    make_container,
    make_iterator,
    threshold,
)
from repro.rtl import Component, Simulator
from repro.testing import stream_drain, stream_feed, stream_feed_and_drain


def buffer_pipeline(algorithm_factory, binding="fifo", width=8, capacity=16):
    """read_buffer -> algorithm -> write_buffer, built from the pattern library."""
    top = Component("top")
    rb = top.child(make_container("read_buffer", binding, "rb", width=width,
                                  capacity=capacity))
    wb = top.child(make_container("write_buffer", binding, "wb", width=width,
                                  capacity=capacity))
    rit = top.child(make_iterator(rb, "forward", readable=True, name="rit"))
    wit = top.child(make_iterator(wb, "forward", writable=True, name="wit"))
    algorithm = top.child(algorithm_factory(rit, wit))
    return top, rb, wb, algorithm, Simulator(top)


class TestCopyAlgorithm:
    @pytest.mark.parametrize("binding", ["fifo", "sram"])
    def test_copies_stream_unchanged(self, binding):
        top, rb, wb, copy, sim = buffer_pipeline(
            lambda rit, wit: CopyAlgorithm("copy", rit, wit), binding=binding)
        data = list(range(30))
        received = stream_feed_and_drain(sim, rb.fill, wb.drain, data)
        assert received == data
        assert copy.elements_processed == len(data)

    def test_endless_by_default(self):
        _top, rb, wb, copy, sim = buffer_pipeline(
            lambda rit, wit: CopyAlgorithm("copy", rit, wit))
        stream_feed_and_drain(sim, rb.fill, wb.drain, [1, 2, 3])
        assert copy.max_count is None
        assert not copy.is_finished

    def test_respects_element_budget(self):
        _top, rb, wb, copy, sim = buffer_pipeline(
            lambda rit, wit: CopyAlgorithm("copy", rit, wit, max_count=4))
        stream_feed(sim, rb.fill, list(range(10)))
        sim.step(100)
        assert copy.is_finished
        assert copy.elements_processed == 4
        assert stream_drain(sim, wb.drain, 4) == [0, 1, 2, 3]
        # Nothing more is copied after the budget is exhausted.
        sim.step(50)
        assert wb.drain.valid.value == 0

    def test_single_cycle_per_element_on_fifo_binding(self):
        _top, rb, wb, copy, sim = buffer_pipeline(
            lambda rit, wit: CopyAlgorithm("copy", rit, wit))
        data = list(range(50))
        start = sim.cycles
        stream_feed_and_drain(sim, rb.fill, wb.drain, data)
        cycles = sim.cycles - start
        assert cycles <= len(data) + 10  # ~1 element per cycle plus pipeline fill


class TestTransformAlgorithm:
    def test_invert_transform(self):
        func = invert(8)
        _top, rb, wb, _alg, sim = buffer_pipeline(
            lambda rit, wit: TransformAlgorithm("inv", rit, wit, func=func))
        data = [0, 1, 0x7F, 0xFF]
        assert stream_feed_and_drain(sim, rb.fill, wb.drain, data) == \
            [0xFF, 0xFE, 0x80, 0x00]

    def test_threshold_transform(self):
        func = threshold(128, 8)
        _top, rb, wb, _alg, sim = buffer_pipeline(
            lambda rit, wit: TransformAlgorithm("thr", rit, wit, func=func))
        data = [0, 127, 128, 255]
        assert stream_feed_and_drain(sim, rb.fill, wb.drain, data) == \
            [0, 0, 255, 255]

    def test_gain_saturates(self):
        func = gain(3, 2, 8)
        _top, rb, wb, _alg, sim = buffer_pipeline(
            lambda rit, wit: TransformAlgorithm("gain", rit, wit, func=func))
        assert stream_feed_and_drain(sim, rb.fill, wb.drain, [10, 200]) == \
            [15, 255]

    def test_logic_cost_hint_is_carried(self):
        _top, _rb, _wb, alg, _sim = buffer_pipeline(
            lambda rit, wit: TransformAlgorithm("inv", rit, wit, func=invert(8),
                                                logic_cost_luts=12))
        assert alg.logic_cost_luts == 12


class TestReduceAlgorithm:
    def test_sums_the_stream(self):
        top = Component("top")
        rb = top.child(make_container("read_buffer", "fifo", "rb", width=8,
                                      capacity=16))
        rit = top.child(make_iterator(rb, "forward", readable=True, name="rit"))
        reducer = top.child(ReduceAlgorithm("sum", rit, max_count=10))
        sim = Simulator(top)
        data = list(range(10))
        stream_feed(sim, rb.fill, data)
        sim.run_until(lambda: reducer.is_finished, 1_000)
        assert reducer.result == sum(data)

    def test_custom_fold_function(self):
        top = Component("top")
        rb = top.child(make_container("read_buffer", "fifo", "rb", width=8,
                                      capacity=16))
        rit = top.child(make_iterator(rb, "forward", readable=True, name="rit"))
        reducer = top.child(ReduceAlgorithm("max", rit, max_count=5,
                                            func=lambda acc, x: max(acc, x)))
        sim = Simulator(top)
        stream_feed(sim, rb.fill, [3, 9, 1, 7, 2])
        sim.run_until(lambda: reducer.is_finished, 1_000)
        assert reducer.result == 9

    def test_requires_positive_count(self):
        top = Component("top")
        rb = top.child(make_container("read_buffer", "fifo", "rb", width=8,
                                      capacity=4))
        rit = top.child(make_iterator(rb, "forward", readable=True, name="rit"))
        with pytest.raises(ValueError):
            ReduceAlgorithm("bad", rit, max_count=0)


class TestFindAlgorithm:
    def _build(self, data, target, max_count=None):
        top = Component("top")
        rb = top.child(make_container("read_buffer", "fifo", "rb", width=8,
                                      capacity=32))
        rit = top.child(make_iterator(rb, "forward", readable=True, name="rit"))
        finder = top.child(FindAlgorithm("find", rit, target=target,
                                         max_count=max_count or len(data)))
        sim = Simulator(top)
        stream_feed(sim, rb.fill, data)
        sim.run_until(lambda: finder.is_finished, 10_000)
        return finder

    def test_finds_first_match(self):
        finder = self._build([5, 9, 9, 2], target=9)
        assert finder.found.value == 1
        assert finder.found_index.value == 1

    def test_reports_miss(self):
        finder = self._build([1, 2, 3], target=77)
        assert finder.found.value == 0
        assert finder.elements_processed == 3


class TestFillAndGenericCopy:
    def test_fill_then_generic_copy_between_vectors(self):
        top = Component("top")
        source = top.child(make_container("vector", "bram", "src", width=8,
                                          capacity=8))
        dest = top.child(make_container("vector", "sram", "dst", width=8,
                                        capacity=8))
        fill_it = top.child(make_iterator(source, "forward", writable=True,
                                          name="fill_it"))
        filler = top.child(FillAlgorithm("fill", fill_it, max_count=8,
                                         func=lambda i: (i * 5) & 0xFF))
        sim = Simulator(top)
        sim.run_until(lambda: filler.is_finished, 5_000)
        expected = [(i * 5) & 0xFF for i in range(8)]
        assert source.snapshot() == expected

        top2 = Component("top2")
        src2 = top2.child(make_container("vector", "bram", "src", width=8,
                                         capacity=8, init=expected))
        dst2 = top2.child(make_container("vector", "sram", "dst", width=8,
                                         capacity=8))
        rit = top2.child(make_iterator(src2, "forward", readable=True, name="rit"))
        wit = top2.child(make_iterator(dst2, "forward", writable=True, name="wit"))
        copier = top2.child(GenericCopyAlgorithm("gcopy", rit, wit, max_count=8))
        sim2 = Simulator(top2)
        sim2.run_until(lambda: copier.is_finished, 20_000)
        assert dst2.snapshot() == expected

    def test_generic_copy_works_over_stream_buffers_too(self):
        top, rb, wb, copier, sim = buffer_pipeline(
            lambda rit, wit: GenericCopyAlgorithm("gcopy", rit, wit, max_count=12))
        data = list(range(12))
        received = stream_feed_and_drain(sim, rb.fill, wb.drain, data)
        assert received == data
        assert copier.is_finished

    def test_generic_copy_requires_count(self):
        top = Component("top")
        rb = top.child(make_container("read_buffer", "fifo", "rb", width=8,
                                      capacity=4))
        wb = top.child(make_container("write_buffer", "fifo", "wb", width=8,
                                      capacity=4))
        rit = top.child(make_iterator(rb, "forward", readable=True, name="rit"))
        wit = top.child(make_iterator(wb, "forward", writable=True, name="wit"))
        with pytest.raises(ValueError):
            GenericCopyAlgorithm("bad", rit, wit, max_count=0)

    def test_fill_requires_positive_count(self):
        top = Component("top")
        wb = top.child(make_container("write_buffer", "fifo", "wb", width=8,
                                      capacity=4))
        wit = top.child(make_iterator(wb, "forward", writable=True, name="wit"))
        with pytest.raises(ValueError):
            FillAlgorithm("bad", wit, max_count=0)
