"""Behavioural tests of the histogram algorithm over vector-backed bins."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core import HistogramAlgorithm, golden_histogram, make_container, make_iterator
from repro.rtl import Component, Simulator
from repro.testing import stream_feed
from repro.video import flatten, random_frame


def build(samples, num_bins=16, sample_width=8, bin_binding="bram",
          bin_width=16):
    top = Component("top")
    rb = top.child(make_container("read_buffer", "fifo", "rb", width=sample_width,
                                  capacity=max(8, len(samples))))
    bins = top.child(make_container("vector", bin_binding, "bins",
                                    width=bin_width, capacity=num_bins))
    src_it = top.child(make_iterator(rb, "forward", readable=True, name="src_it"))
    bin_it = top.child(make_iterator(bins, "random", readable=True, writable=True,
                                     name="bin_it"))
    hist = top.child(HistogramAlgorithm("hist", src_it, bin_it,
                                        num_bins=num_bins,
                                        sample_width=sample_width,
                                        max_count=len(samples)))
    sim = Simulator(top)
    stream_feed(sim, rb.fill, samples)
    sim.run_until(lambda: hist.is_finished, 200_000)
    return bins.snapshot(), hist


def test_histogram_matches_golden_model():
    samples = flatten(random_frame(16, 8, seed=12))
    counts, hist = build(samples)
    assert counts == golden_histogram(samples, 16, 8)
    assert sum(counts) == len(samples)
    assert hist.elements_processed == len(samples)


def test_histogram_bin_selection_uses_high_bits():
    # Samples 0..15 all fall into bin 0 of a 16-bin / 8-bit histogram.
    counts, _ = build(list(range(16)))
    assert counts[0] == 16
    assert sum(counts[1:]) == 0
    # Sample 0xF0..0xFF all fall into the last bin.
    counts, _ = build([0xF0 + i for i in range(16)])
    assert counts[-1] == 16


@pytest.mark.parametrize("bin_binding", ["bram", "registers", "sram"])
def test_histogram_over_every_bin_storage_binding(bin_binding):
    """The same algorithm instance structure runs over any bin container binding."""
    samples = flatten(random_frame(8, 4, seed=3))
    counts, _ = build(samples, bin_binding=bin_binding)
    assert counts == golden_histogram(samples, 16, 8)


def test_histogram_parameter_validation():
    top = Component("top")
    rb = top.child(make_container("read_buffer", "fifo", "rb", width=8, capacity=8))
    bins = top.child(make_container("vector", "bram", "bins", width=16, capacity=16))
    src_it = top.child(make_iterator(rb, "forward", readable=True, name="src_it"))
    bin_it = top.child(make_iterator(bins, "random", readable=True, writable=True,
                                     name="bin_it"))
    with pytest.raises(ValueError):
        HistogramAlgorithm("bad", src_it, bin_it, num_bins=12, sample_width=8,
                           max_count=4)
    with pytest.raises(ValueError):
        HistogramAlgorithm("bad", src_it, bin_it, num_bins=16, sample_width=8,
                           max_count=0)
    with pytest.raises(ValueError):
        HistogramAlgorithm("bad", src_it, bin_it, num_bins=1024, sample_width=8,
                           max_count=4)


def test_golden_histogram_with_initial_counts():
    assert golden_histogram([0, 255], 2, 8, initial=[5, 5]) == [6, 6]


@settings(max_examples=10, deadline=None)
@given(samples=st.lists(st.integers(min_value=0, max_value=255), min_size=1,
                        max_size=40),
       num_bins=st.sampled_from([4, 16, 64]))
def test_property_histogram_equals_golden(samples, num_bins):
    counts, _ = build(samples, num_bins=num_bins)
    assert counts == golden_histogram(samples, num_bins, 8)
