"""Tests of the 3x3 blur algorithm and its kernel against the golden model."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core import BlurAlgorithm, CopyAlgorithm, blur_kernel, make_container, make_iterator
from repro.rtl import Component, Simulator
from repro.video import flatten, golden_blur3x3, gradient_frame, random_frame
from repro.testing import stream_feed_and_drain


def test_blur_kernel_is_floor_mean():
    assert blur_kernel([9] * 9) == 9
    assert blur_kernel(range(9)) == sum(range(9)) // 9
    assert blur_kernel([0] * 8 + [255]) == 255 // 9


def test_blur_kernel_rejects_wrong_window_size():
    with pytest.raises(ValueError):
        blur_kernel([1, 2, 3])


def build_blur_pipeline(line_width, width=8, out_capacity=32):
    top = Component("top")
    rb = top.child(make_container("read_buffer", "linebuffer3", "rb", width=width,
                                  line_width=line_width))
    wb = top.child(make_container("write_buffer", "fifo", "wb", width=width,
                                  capacity=out_capacity))
    win_it = top.child(make_iterator(rb, "window", readable=True, name="win_it"))
    out_it = top.child(make_iterator(wb, "forward", writable=True, name="out_it"))
    blur = top.child(BlurAlgorithm("blur", win_it, out_it, line_width=line_width))
    return top, rb, wb, blur, Simulator(top)


@pytest.mark.parametrize("width,height,seed", [(8, 6, 1), (12, 5, 2), (16, 8, 3)])
def test_blur_matches_golden_model(width, height, seed):
    frame = random_frame(width, height, seed=seed)
    golden = flatten(golden_blur3x3(frame))
    _top, rb, wb, blur, sim = build_blur_pipeline(line_width=width)
    received = stream_feed_and_drain(sim, rb.fill, wb.drain, flatten(frame),
                                     expected=len(golden))
    assert received == golden
    assert blur.elements_processed == len(golden)


def test_blur_on_smooth_gradient_is_nearly_identity():
    frame = gradient_frame(10, 10)
    golden = flatten(golden_blur3x3(frame))
    _top, rb, wb, _blur, sim = build_blur_pipeline(line_width=10)
    received = stream_feed_and_drain(sim, rb.fill, wb.drain, flatten(frame),
                                     expected=len(golden))
    # On a smooth ramp the blurred pixel stays within 1 LSB of the centre.
    centres = flatten([row[1:-1] for row in frame[1:-1]])
    assert all(abs(out - centre) <= 2 for out, centre in zip(received, centres))


def test_blur_output_count_is_interior_size():
    frame = random_frame(9, 7, seed=4)
    golden = golden_blur3x3(frame)
    assert len(golden) == 5
    assert len(golden[0]) == 7
    _top, rb, wb, blur, sim = build_blur_pipeline(line_width=9)
    received = stream_feed_and_drain(sim, rb.fill, wb.drain, flatten(frame),
                                     expected=(9 - 2) * (7 - 2))
    assert len(received) == 35


def test_blur_requires_window_iterator():
    top = Component("top")
    rb = top.child(make_container("read_buffer", "fifo", "rb", width=8, capacity=8))
    wb = top.child(make_container("write_buffer", "fifo", "wb", width=8, capacity=8))
    rit = top.child(make_iterator(rb, "forward", readable=True, name="rit"))
    wit = top.child(make_iterator(wb, "forward", writable=True, name="wit"))
    with pytest.raises(TypeError):
        BlurAlgorithm("blur", rit, wit, line_width=8)


def test_blur_rejects_tiny_lines():
    top = Component("top")
    rb = top.child(make_container("read_buffer", "linebuffer3", "rb", width=8,
                                  line_width=4))
    wb = top.child(make_container("write_buffer", "fifo", "wb", width=8, capacity=8))
    win_it = top.child(make_iterator(rb, "window", readable=True, name="win_it"))
    out_it = top.child(make_iterator(wb, "forward", writable=True, name="out_it"))
    with pytest.raises(ValueError):
        BlurAlgorithm("blur", win_it, out_it, line_width=2)


def test_copy_algorithm_also_works_over_window_binding():
    """The ordinary copy still runs over the 3-line-buffer binding (centre pixel)."""
    width, height = 6, 5
    frame = random_frame(width, height, seed=9)
    top = Component("top")
    rb = top.child(make_container("read_buffer", "linebuffer3", "rb", width=8,
                                  line_width=width))
    wb = top.child(make_container("write_buffer", "fifo", "wb", width=8, capacity=16))
    rit = top.child(make_iterator(rb, "forward", readable=True, name="rit"))
    wit = top.child(make_iterator(wb, "forward", writable=True, name="wit"))
    top.child(CopyAlgorithm("copy", rit, wit))
    sim = Simulator(top)
    expected = flatten(frame[1:-1])  # the centre row of each valid column
    received = stream_feed_and_drain(sim, rb.fill, wb.drain, flatten(frame),
                                     expected=len(expected))
    assert received == expected


@settings(max_examples=8, deadline=None)
@given(seed=st.integers(min_value=0, max_value=10_000))
def test_property_blur_equals_golden_for_random_frames(seed):
    frame = random_frame(7, 5, seed=seed)
    golden = flatten(golden_blur3x3(frame))
    _top, rb, wb, _blur, sim = build_blur_pipeline(line_width=7)
    received = stream_feed_and_drain(sim, rb.fill, wb.drain, flatten(frame),
                                     expected=len(golden))
    assert received == golden
