"""Functional tests of the blur designs (pattern-based versus hand-written)."""

import pytest

from repro.designs import BlurCustomDesign, BlurPatternDesign, build_blur_pattern, run_stream_through
from repro.video import flatten, golden_blur3x3, random_frame

WIDTH, HEIGHT = 16, 10
FRAME = random_frame(WIDTH, HEIGHT, seed=77)
GOLDEN = flatten(golden_blur3x3(FRAME))


def run_blur(design):
    return run_stream_through(design, FRAME, expected_outputs=len(GOLDEN))


def test_pattern_blur_matches_golden_model():
    result = run_blur(build_blur_pattern(line_width=WIDTH, out_capacity=32))
    assert result["pixels"] == GOLDEN


def test_custom_blur_matches_golden_model():
    result = run_blur(BlurCustomDesign(line_width=WIDTH, out_capacity=32))
    assert result["pixels"] == GOLDEN


def test_pattern_and_custom_blur_are_equivalent_in_output_and_cycles():
    pattern = run_blur(build_blur_pattern(line_width=WIDTH, out_capacity=32))
    custom = run_blur(BlurCustomDesign(line_width=WIDTH, out_capacity=32))
    assert pattern["pixels"] == custom["pixels"]
    assert abs(pattern["cycles"] - custom["cycles"]) <= max(4, 0.05 * custom["cycles"])


def test_blur_output_size_is_interior_of_the_frame():
    result = run_blur(build_blur_pattern(line_width=WIDTH, out_capacity=32))
    assert result["outputs"] == (WIDTH - 2) * (HEIGHT - 2)


def test_blur_throughput_approaches_one_pixel_per_cycle():
    """'Ideally a new filtered pixel can be generated at each clock cycle.'"""
    big = random_frame(32, 20, seed=5)
    golden = flatten(golden_blur3x3(big))
    result = run_stream_through(build_blur_pattern(line_width=32, out_capacity=64),
                                big, expected_outputs=len(golden))
    # Input pixels dominate: (W*H) cycles of input, output keeps pace.
    assert result["cycles"] <= 32 * 20 * 2.2


def test_blur_on_uniform_frame_is_uniform():
    uniform = [[123] * 12 for _ in range(6)]
    result = run_stream_through(build_blur_pattern(line_width=12, out_capacity=32),
                                uniform, expected_outputs=10 * 4)
    assert set(result["pixels"]) == {123}


def test_blur_with_slow_display_backpressure():
    result = run_stream_through(build_blur_pattern(line_width=WIDTH, out_capacity=8),
                                FRAME, expected_outputs=len(GOLDEN), sink_stall=2)
    assert result["pixels"] == GOLDEN


@pytest.mark.parametrize("line_width,height,seed", [(8, 6, 0), (20, 7, 1)])
def test_blur_for_other_geometries(line_width, height, seed):
    frame = random_frame(line_width, height, seed=seed)
    golden = flatten(golden_blur3x3(frame))
    result = run_stream_through(build_blur_pattern(line_width=line_width,
                                                   out_capacity=32),
                                frame, expected_outputs=len(golden))
    assert result["pixels"] == golden


def test_describe_reports_linebuffer_binding():
    design = BlurPatternDesign(line_width=16)
    assert design.binding == "linebuffer3"
    assert design.describe()["style"] == "pattern"
    assert BlurCustomDesign(line_width=16).describe()["style"] == "custom"
