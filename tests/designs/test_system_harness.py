"""Tests for the VideoSystem harness itself."""

import pytest

from repro.designs import Saa2VgaCustomFIFO, VideoSystem, build_saa2vga_pattern, run_stream_through
from repro.rtl import Component, SimulationError
from repro.video import flatten, random_frame


def test_rejects_designs_without_stream_interfaces():
    with pytest.raises(TypeError):
        VideoSystem(Component("bare"), frames=[])


def test_simulate_returns_simulator_and_collects_pixels():
    frame = random_frame(6, 4, seed=11)
    system = VideoSystem(build_saa2vga_pattern("fifo", capacity=8), frames=[frame])
    sim = system.simulate(expected_outputs=24)
    assert sim.cycles > 0
    assert system.received_pixels() == flatten(frame)
    assert system.received_frame(6, 4) == frame


def test_simulate_raises_when_pipeline_stalls():
    # Expect more pixels than the stream contains: the harness must not hang.
    frame = random_frame(4, 2, seed=12)
    system = VideoSystem(Saa2VgaCustomFIFO(capacity=8), frames=[frame])
    with pytest.raises(SimulationError):
        system.simulate(expected_outputs=100, max_cycles=2_000)


def test_run_stream_through_reports_all_fields():
    frame = random_frame(8, 2, seed=13)
    result = run_stream_through(build_saa2vga_pattern("fifo", capacity=8), frame)
    assert set(result) >= {"pixels", "cycles", "inputs", "outputs", "throughput",
                           "system", "simulator"}
    assert result["inputs"] == 16
    assert result["outputs"] == 16
    assert 0 < result["throughput"] <= 1.0


def test_received_frame_offset():
    frames = [random_frame(4, 2, seed=s) for s in (1, 2)]
    system = VideoSystem(build_saa2vga_pattern("fifo", capacity=8), frames=frames)
    system.simulate(expected_outputs=16)
    assert system.received_frame(4, 2, offset=8) == frames[1]
