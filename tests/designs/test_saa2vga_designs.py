"""Functional tests of the saa2vga designs: pattern-based and custom, FIFO and SRAM.

The central reuse claim is checked here: the *same* pattern model (containers,
iterators, copy algorithm) runs unchanged over both bindings and produces the
exact same pixel stream as the hand-written baselines.
"""

import pytest

from repro.designs import (
    Saa2VgaCustomFIFO,
    Saa2VgaCustomSRAM,
    Saa2VgaPatternDesign,
    build_saa2vga_pattern,
    run_stream_through,
)
from repro.video import flatten, gradient_frame, random_frame

FRAME = random_frame(16, 8, seed=42)
PIXELS = flatten(FRAME)


def design_factories():
    return {
        "pattern_fifo": lambda: build_saa2vga_pattern("fifo", capacity=16),
        "pattern_sram": lambda: build_saa2vga_pattern("sram", capacity=16),
        "custom_fifo": lambda: Saa2VgaCustomFIFO(capacity=16),
        "custom_sram": lambda: Saa2VgaCustomSRAM(capacity=16),
    }


@pytest.mark.parametrize("label", list(design_factories()))
def test_every_variant_copies_the_frame_bit_exactly(label):
    design = design_factories()[label]()
    result = run_stream_through(design, FRAME)
    assert result["pixels"] == PIXELS
    assert design.pixels_processed >= len(PIXELS)


def test_pattern_and_custom_fifo_produce_identical_streams():
    reference = run_stream_through(Saa2VgaCustomFIFO(capacity=16), FRAME)
    pattern = run_stream_through(build_saa2vga_pattern("fifo", capacity=16), FRAME)
    assert pattern["pixels"] == reference["pixels"]


def test_pattern_and_custom_sram_produce_identical_streams():
    reference = run_stream_through(Saa2VgaCustomSRAM(capacity=16), FRAME)
    pattern = run_stream_through(build_saa2vga_pattern("sram", capacity=16), FRAME)
    assert pattern["pixels"] == reference["pixels"]


def test_fifo_binding_achieves_streaming_rate():
    result = run_stream_through(build_saa2vga_pattern("fifo", capacity=16), FRAME)
    assert result["throughput"] > 0.8  # about one pixel per cycle


def test_sram_binding_is_functionally_equal_but_slower():
    fifo = run_stream_through(build_saa2vga_pattern("fifo", capacity=16), FRAME)
    sram = run_stream_through(build_saa2vga_pattern("sram", capacity=16), FRAME)
    assert sram["pixels"] == fifo["pixels"]
    assert sram["cycles"] > fifo["cycles"] * 2


def test_pattern_and_custom_fifo_cycle_counts_are_comparable():
    fifo_pattern = run_stream_through(build_saa2vga_pattern("fifo", capacity=16),
                                      FRAME)["cycles"]
    fifo_custom = run_stream_through(Saa2VgaCustomFIFO(capacity=16), FRAME)["cycles"]
    assert abs(fifo_pattern - fifo_custom) <= max(4, 0.05 * fifo_custom)


def test_binding_change_does_not_touch_the_model():
    """Section 3.3: changing the buffers to SRAM 'does not really affect the model'."""
    fifo_design = build_saa2vga_pattern("fifo", capacity=16)
    sram_design = build_saa2vga_pattern("sram", capacity=16)
    # Identical algorithm class and identical iterator classes — only the
    # container binding differs.
    assert type(fifo_design.algorithm) is type(sram_design.algorithm)
    assert type(fifo_design.rbuffer_it) is type(sram_design.rbuffer_it)
    assert type(fifo_design.wbuffer_it) is type(sram_design.wbuffer_it)
    assert type(fifo_design.rbuffer) is not type(sram_design.rbuffer)
    assert fifo_design.describe()["algorithm"].endswith("copy")


def test_back_pressure_from_a_slow_display():
    design = build_saa2vga_pattern("fifo", capacity=8)
    result = run_stream_through(design, gradient_frame(8, 8), sink_stall=3)
    assert result["pixels"] == flatten(gradient_frame(8, 8))
    assert result["cycles"] >= 63 * 4


def test_slow_camera_front_end():
    design = Saa2VgaCustomFIFO(capacity=8)
    result = run_stream_through(design, gradient_frame(8, 4), source_stall=2)
    assert result["pixels"] == flatten(gradient_frame(8, 4))


def test_multi_frame_stream():
    frames = [random_frame(8, 4, seed=s) for s in (1, 2, 3)]
    design = build_saa2vga_pattern("fifo", capacity=16)
    from repro.designs import VideoSystem
    system = VideoSystem(design, frames=frames)
    sim = system.simulate(expected_outputs=8 * 4 * 3)
    expected = [p for frame in frames for p in flatten(frame)]
    assert system.received_pixels() == expected
    assert sim.cycles < 8 * 4 * 3 * 3


def test_describe_reports_structure():
    design = Saa2VgaPatternDesign(binding="fifo", capacity=16)
    info = design.describe()
    assert info["style"] == "pattern"
    assert len(info["containers"]) == 2
    assert len(info["iterators"]) == 2
