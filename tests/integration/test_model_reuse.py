"""Integration tests for the model-reuse claims of Sections 2 and 3.3.

The motivating example argues that an ad-hoc copy FSM must be "radically
changed" when a sequential buffer is replaced by a RAM, whereas the
pattern-based model is untouched.  These tests assert the second half of that
claim mechanically: the exact same algorithm and iterator classes, with the
same structural footprint, drive every binding, and only the container
implementation differs.
"""

from repro.core import (
    CopyAlgorithm,
    TransformAlgorithm,
    invert,
    make_container,
    make_iterator,
)
from repro.designs import build_blur_pattern, build_saa2vga_pattern, run_stream_through
from repro.rtl import Component, Simulator
from repro.synth import estimate_design
from repro.testing import stream_feed_and_drain
from repro.video import flatten, golden_map, random_frame


def test_same_algorithm_class_and_iterators_across_bindings():
    fifo = build_saa2vga_pattern("fifo", capacity=32)
    sram = build_saa2vga_pattern("sram", capacity=32)
    assert type(fifo.algorithm) is type(sram.algorithm)
    assert type(fifo.rbuffer_it) is type(sram.rbuffer_it)
    assert type(fifo.wbuffer_it) is type(sram.wbuffer_it)
    # The algorithm component has the same structural footprint in both
    # designs: same registers, same processes — nothing was rewritten.
    assert fifo.algorithm.state_bits() == sram.algorithm.state_bits()
    assert len(fifo.algorithm.comb_procs) == len(sram.algorithm.comb_procs)
    assert len(fifo.algorithm.seq_procs) == len(sram.algorithm.seq_procs)


def test_algorithm_resource_estimate_is_binding_independent():
    estimator_rows = {}
    for binding in ("fifo", "sram"):
        design = build_saa2vga_pattern(binding, capacity=64)
        report = estimate_design(design)
        algorithm_entries = [entry for entry in report.components
                             if entry.path.endswith(".copy")]
        assert len(algorithm_entries) == 1
        entry = algorithm_entries[0]
        estimator_rows[binding] = (entry.resources.ffs, entry.resources.total_luts)
    assert estimator_rows["fifo"] == estimator_rows["sram"]


def test_transform_algorithm_reused_over_four_container_pairings():
    """The same transform runs over fifo/sram buffers in any combination."""
    frame = random_frame(8, 4, seed=31)
    pixels = flatten(frame)
    expected = flatten(golden_map(frame, invert(8)))
    for in_binding in ("fifo", "sram"):
        for out_binding in ("fifo", "sram"):
            top = Component("top")
            rb = top.child(make_container("read_buffer", in_binding, "rb",
                                          width=8, capacity=16))
            wb = top.child(make_container("write_buffer", out_binding, "wb",
                                          width=8, capacity=16))
            rit = top.child(make_iterator(rb, "forward", readable=True, name="rit"))
            wit = top.child(make_iterator(wb, "forward", writable=True, name="wit"))
            top.child(TransformAlgorithm("inv", rit, wit, func=invert(8)))
            sim = Simulator(top)
            received = stream_feed_and_drain(sim, rb.fill, wb.drain, pixels,
                                             max_cycles=200_000)
            assert received == expected, (in_binding, out_binding)


def test_copy_algorithm_reused_from_queue_to_stack():
    """Algorithms are container-agnostic: a queue source feeding a stack sink."""
    top = Component("top")
    queue = top.child(make_container("queue", "fifo", "q", width=8, capacity=16))
    stack = top.child(make_container("stack", "lifo", "s", width=8, capacity=16))
    qit = top.child(make_iterator(queue, "forward", readable=True, name="qit"))
    sit = top.child(make_iterator(stack, "backward", writable=True, name="sit"))

    # The stack's output iterator advances with `dec`; bridge the copy
    # algorithm's `inc` strobe onto it so the generic copy works unchanged.
    class DecBridge(Component):
        def __init__(self, name, iface):
            super().__init__(name)

            @self.comb
            def bridge():
                iface.dec.next = iface.inc.value

    top.child(DecBridge("bridge", sit.iface))
    top.child(CopyAlgorithm("copy", qit, sit))
    sim = Simulator(top)
    data = [1, 2, 3, 4, 5]
    from repro.testing import stream_feed
    stream_feed(sim, queue.sink, data)
    sim.step(60)
    assert stack.snapshot() == data  # pushed in order; pops would reverse it


def test_blur_and_copy_share_the_same_output_iterator_class():
    blur = build_blur_pattern(line_width=16)
    copy = build_saa2vga_pattern("fifo", capacity=16)
    assert type(blur.wbuffer_it) is type(copy.wbuffer_it)
    assert type(blur.wbuffer) is type(copy.wbuffer)


def test_end_to_end_results_are_binding_independent():
    frame = random_frame(12, 6, seed=8)
    outputs = {}
    for binding in ("fifo", "sram"):
        design = build_saa2vga_pattern(binding, capacity=16)
        outputs[binding] = run_stream_through(design, frame)["pixels"]
    assert outputs["fifo"] == outputs["sram"] == flatten(frame)
