"""Integration test for the pixel-format change scenario of Section 3.3.

"It would also be possible to modify the pixel data representation (from
8-bit grayscale to 24-bit RGB, for example)."  Two alternatives are
exercised:

1. a 24-bit data path end to end (regenerate every element with the wider
   base type) — the containers are simply instantiated with ``width=24``;
2. a 24-bit pixel stream over 8-bit containers, using the generated width
   adapters to perform "three consecutive container reads/writes to get/set
   the whole pixel".
"""

from repro.core import CopyAlgorithm, make_container, make_iterator
from repro.metagen import WidthDownConverter, WidthUpConverter
from repro.rtl import Component, Simulator
from repro.testing import stream_feed_and_drain
from repro.video import RGB24, flatten, gray_to_rgb24, random_frame


def rgb_pixels(width=8, height=4, seed=3):
    gray = random_frame(width, height, seed=seed)
    return [gray_to_rgb24(pixel) for pixel in flatten(gray)]


def test_alternative_1_regenerate_with_24_bit_base_type():
    """24-bit data bus: only the element width of the containers changes."""
    top = Component("top")
    rb = top.child(make_container("read_buffer", "fifo", "rb", width=24, capacity=16))
    wb = top.child(make_container("write_buffer", "fifo", "wb", width=24, capacity=16))
    rit = top.child(make_iterator(rb, "forward", readable=True, name="rit"))
    wit = top.child(make_iterator(wb, "forward", writable=True, name="wit"))
    top.child(CopyAlgorithm("copy", rit, wit))
    sim = Simulator(top)
    pixels = rgb_pixels()
    received = stream_feed_and_drain(sim, rb.fill, wb.drain, pixels)
    assert received == pixels
    assert all(0 <= p <= RGB24.max_value for p in received)


def test_alternative_2_24_bit_pixels_over_8_bit_containers():
    """8-bit data bus: width adapters wrap the unchanged 8-bit pipeline."""
    top = Component("top")
    # The existing 8-bit pipeline (unchanged model, unchanged algorithm).
    rb = top.child(make_container("read_buffer", "fifo", "rb", width=8, capacity=32))
    wb = top.child(make_container("write_buffer", "fifo", "wb", width=8, capacity=32))
    rit = top.child(make_iterator(rb, "forward", readable=True, name="rit"))
    wit = top.child(make_iterator(wb, "forward", writable=True, name="wit"))
    top.child(CopyAlgorithm("copy", rit, wit))
    # Generated adaptation logic at the boundaries.
    down = top.child(WidthDownConverter("down", element_width=24, bus_width=8))
    up = top.child(WidthUpConverter("up", element_width=24, bus_width=8))

    @top.comb
    def connect():
        # down-converter narrow side -> read buffer fill
        rb.fill.data.next = down.narrow_out.data.value
        transfer_in = down.narrow_out.valid.value and rb.fill.ready.value
        rb.fill.push.next = 1 if transfer_in else 0
        down.narrow_out.pop.next = 1 if transfer_in else 0
        # write buffer drain -> up-converter narrow side
        up.narrow_in.data.next = wb.drain.data.value
        transfer_out = wb.drain.valid.value and up.narrow_in.ready.value
        up.narrow_in.push.next = 1 if transfer_out else 0
        wb.drain.pop.next = 1 if transfer_out else 0

    sim = Simulator(top)
    pixels = rgb_pixels()
    received = stream_feed_and_drain(sim, down.wide_in, up.wide_out, pixels,
                                     max_cycles=200_000)
    assert received == pixels


def test_both_alternatives_agree():
    pixels = rgb_pixels(seed=9)

    def run_24bit():
        top = Component("top")
        rb = top.child(make_container("read_buffer", "fifo", "rb", width=24,
                                      capacity=16))
        wb = top.child(make_container("write_buffer", "fifo", "wb", width=24,
                                      capacity=16))
        rit = top.child(make_iterator(rb, "forward", readable=True, name="rit"))
        wit = top.child(make_iterator(wb, "forward", writable=True, name="wit"))
        top.child(CopyAlgorithm("copy", rit, wit))
        sim = Simulator(top)
        return stream_feed_and_drain(sim, rb.fill, wb.drain, pixels)

    assert run_24bit() == pixels
