"""Robustness and stress tests across the stack.

Latency-insensitivity: the pattern designs must produce bit-exact output under
arbitrary producer/consumer throttling, because back-pressure is carried
end-to-end by the stream and iterator protocols (docs/PROTOCOLS.md).  The
simulator must also be deterministic, since every experiment in the
reproduction relies on exact repeatability.
"""

from hypothesis import given, settings, strategies as st

from repro.core import make_container, make_iterator
from repro.core.algorithms import GenericCopyAlgorithm
from repro.designs import build_blur_pattern, build_saa2vga_pattern, run_stream_through
from repro.rtl import Component, Simulator
from repro.video import flatten, golden_blur3x3, random_frame


@settings(max_examples=8, deadline=None)
@given(source_stall=st.integers(min_value=0, max_value=4),
       sink_stall=st.integers(min_value=0, max_value=4),
       seed=st.integers(min_value=0, max_value=999))
def test_copy_is_latency_insensitive(source_stall, sink_stall, seed):
    frame = random_frame(10, 5, seed=seed)
    result = run_stream_through(build_saa2vga_pattern("fifo", capacity=8), frame,
                                source_stall=source_stall, sink_stall=sink_stall)
    assert result["pixels"] == flatten(frame)


@settings(max_examples=6, deadline=None)
@given(source_stall=st.integers(min_value=0, max_value=3),
       sink_stall=st.integers(min_value=0, max_value=3))
def test_blur_is_latency_insensitive(source_stall, sink_stall):
    frame = random_frame(10, 6, seed=7)
    golden = flatten(golden_blur3x3(frame))
    result = run_stream_through(build_blur_pattern(line_width=10, out_capacity=8),
                                frame, expected_outputs=len(golden),
                                source_stall=source_stall, sink_stall=sink_stall)
    assert result["pixels"] == golden


def test_simulation_is_deterministic():
    frame = random_frame(12, 6, seed=3)

    def run():
        return run_stream_through(build_saa2vga_pattern("sram", capacity=16), frame)

    first = run()
    second = run()
    assert first["pixels"] == second["pixels"]
    assert first["cycles"] == second["cycles"]


def test_tiny_capacity_buffers_still_work():
    """Capacity-2 buffers exercise continuous full/empty boundary conditions."""
    frame = random_frame(16, 4, seed=9)
    result = run_stream_through(build_saa2vga_pattern("fifo", capacity=2), frame)
    assert result["pixels"] == flatten(frame)


def test_mixed_binding_pipeline():
    """A FIFO read buffer feeding an SRAM write buffer (and vice versa)."""
    frame = random_frame(8, 4, seed=21)

    class Mixed(Component):
        def __init__(self, in_binding, out_binding):
            super().__init__(f"mixed_{in_binding}_{out_binding}")
            from repro.core import CopyAlgorithm
            self.rb = self.child(make_container("read_buffer", in_binding, "rb",
                                                width=8, capacity=8))
            self.wb = self.child(make_container("write_buffer", out_binding, "wb",
                                                width=8, capacity=8))
            self.rit = self.child(make_iterator(self.rb, "forward", readable=True,
                                                name="rit"))
            self.wit = self.child(make_iterator(self.wb, "forward", writable=True,
                                                name="wit"))
            self.child(CopyAlgorithm("copy", self.rit, self.wit))
            self.input_fill = self.rb.fill
            self.output_drain = self.wb.drain

    for in_binding, out_binding in (("fifo", "sram"), ("sram", "fifo")):
        result = run_stream_through(Mixed(in_binding, out_binding), frame)
        assert result["pixels"] == flatten(frame), (in_binding, out_binding)


def test_long_multi_frame_soak():
    """Several frames back to back through the SRAM binding (slowest path)."""
    frames = [random_frame(8, 4, seed=s) for s in range(4)]
    from repro.designs import VideoSystem
    system = VideoSystem(build_saa2vga_pattern("sram", capacity=8), frames=frames)
    system.simulate(expected_outputs=8 * 4 * len(frames), max_cycles=400_000)
    expected = [p for frame in frames for p in flatten(frame)]
    assert system.received_pixels() == expected


def test_generic_copy_vector_to_vector_across_bindings():
    """Vector-to-vector copies for every source/destination binding pairing."""
    data = [i * 3 & 0xFF for i in range(8)]
    for src_binding in ("bram", "registers", "sram"):
        for dst_binding in ("bram", "registers", "sram"):
            top = Component("top")
            src = top.child(make_container("vector", src_binding, "src", width=8,
                                           capacity=8))
            dst = top.child(make_container("vector", dst_binding, "dst", width=8,
                                           capacity=8))
            src.load(data)
            rit = top.child(make_iterator(src, "forward", readable=True, name="rit"))
            wit = top.child(make_iterator(dst, "forward", writable=True, name="wit"))
            copier = top.child(GenericCopyAlgorithm("copy", rit, wit, max_count=8))
            sim = Simulator(top)
            sim.run_until(lambda: copier.is_finished, 50_000)
            assert dst.snapshot() == data, (src_binding, dst_binding)
