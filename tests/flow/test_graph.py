"""Graph API and topology validation of ``repro.flow``."""

import pytest

from repro.core import make_container
from repro.designs import build_saa2vga_pattern
from repro.flow import GraphError, PipelineGraph, stream_ports
from repro.metagen import WidthDownConverter


def two_stage_graph(depth=2):
    g = PipelineGraph("g", input_width=8, output_width=8)
    a = g.stage(build_saa2vga_pattern("fifo", capacity=4), name="a")
    b = g.stage(build_saa2vga_pattern("fifo", capacity=4), name="b")
    g.connect(g.INPUT, a, depth=0)
    g.connect(a, b, depth=depth)
    g.connect(b, g.OUTPUT, depth=0)
    return g


# -- port discovery -----------------------------------------------------------


def test_designs_expose_canonical_in_out_ports():
    design = build_saa2vga_pattern("fifo", capacity=4)
    ins, outs = stream_ports(design)
    assert set(ins) == {"in"} and ins["in"] is design.input_fill
    assert set(outs) == {"out"} and outs["out"] is design.output_drain


def test_bare_containers_are_valid_stages():
    queue = make_container("queue", "fifo", "q", width=8, capacity=4)
    ins, outs = stream_ports(queue)
    assert ins["sink"] is queue.sink
    assert outs["source"] is queue.source


def test_width_converters_are_valid_stages():
    conv = WidthDownConverter("conv", element_width=24, bus_width=8)
    ins, outs = stream_ports(conv)
    assert ins["wide_in"] is conv.wide_in
    assert outs["narrow_out"] is conv.narrow_out


def test_structural_nodes_expose_flow_ports():
    g = PipelineGraph("g")
    fork = g.fork("f", width=8, ways=3)
    assert set(fork.inputs) == {"in"}
    assert set(fork.outputs) == {"out0", "out1", "out2"}


# -- construction errors ------------------------------------------------------


def test_duplicate_node_names_rejected():
    g = PipelineGraph("g")
    g.stage(build_saa2vga_pattern("fifo", capacity=4), name="x")
    with pytest.raises(GraphError, match="duplicate"):
        g.stage(build_saa2vga_pattern("fifo", capacity=4), name="x")


def test_parented_component_rejected():
    g = PipelineGraph("g")
    design = build_saa2vga_pattern("fifo", capacity=4)
    g.stage(design, name="ok")
    with pytest.raises(GraphError, match="parent"):
        PipelineGraph("g2").stage(design.rbuffer, name="stolen")


def test_component_without_stream_ports_rejected():
    from repro.rtl import Component

    with pytest.raises(GraphError, match="no stream interfaces"):
        PipelineGraph("g").stage(Component("bare"))


def test_bad_depth_rejected():
    g = PipelineGraph("g")
    a = g.stage(build_saa2vga_pattern("fifo", capacity=4), name="a")
    with pytest.raises(GraphError, match="depth"):
        g.connect(g.INPUT, a, depth=1)
    with pytest.raises(GraphError, match="depth"):
        g.connect(g.INPUT, a, depth=-3)


def test_double_driven_output_rejected():
    g = PipelineGraph("g")
    a = g.stage(build_saa2vga_pattern("fifo", capacity=4), name="a")
    b = g.stage(build_saa2vga_pattern("fifo", capacity=4), name="b")
    c = g.stage(build_saa2vga_pattern("fifo", capacity=4), name="c")
    g.connect(a, b)
    with pytest.raises(GraphError, match="Fork"):
        g.connect(a, c, src_port="out")


def test_double_connected_graph_boundary_rejected():
    g = PipelineGraph("g")
    a = g.stage(build_saa2vga_pattern("fifo", capacity=4), name="a")
    b = g.stage(build_saa2vga_pattern("fifo", capacity=4), name="b")
    g.connect(g.INPUT, a)
    with pytest.raises(GraphError, match="already connected"):
        g.connect(g.INPUT, b)


def test_unknown_ports_and_nodes_rejected():
    g = PipelineGraph("g")
    a = g.stage(build_saa2vga_pattern("fifo", capacity=4), name="a")
    with pytest.raises(GraphError, match="no output port"):
        g.connect(a, g.OUTPUT, src_port="nope")
    with pytest.raises(GraphError, match="unknown node"):
        g.connect("ghost", g.OUTPUT)


# -- validation ---------------------------------------------------------------


def test_valid_graph_passes_validation():
    two_stage_graph().validate()


def test_dangling_input_detected():
    g = PipelineGraph("g", input_width=8)
    a = g.stage(build_saa2vga_pattern("fifo", capacity=4), name="a")
    b = g.stage(build_saa2vga_pattern("fifo", capacity=4), name="b")
    g.connect(g.INPUT, a)
    g.connect(a, g.OUTPUT)
    with pytest.raises(GraphError, match="dangling input port b.in"):
        g.validate()


def test_dangling_output_detected_and_open_opt_out():
    g = PipelineGraph("g", input_width=8)
    split = g.split("split", width=8, ways=2)
    a = g.stage(build_saa2vga_pattern("fifo", capacity=4), name="a")
    b = g.stage(build_saa2vga_pattern("fifo", capacity=4), name="b")
    g.connect(g.INPUT, split)
    g.connect(split, a)
    g.connect(split, b)
    g.connect(a, g.OUTPUT)
    # b.out is dangling -> error.
    with pytest.raises(GraphError, match="dangling output port b.out"):
        g.validate()
    g.open_output(b)
    g.validate()


def test_missing_boundary_detected():
    g = PipelineGraph("g")
    a = g.stage(build_saa2vga_pattern("fifo", capacity=4), name="a")
    g.connect(a, g.OUTPUT)
    with pytest.raises(GraphError, match="graph input"):
        g.validate()


def test_cycle_detected():
    g = PipelineGraph("g", input_width=8)
    fork = g.fork("fork", width=8, ways=2)
    merge = g.merge("merge", width=8, ways=2)
    g.connect(g.INPUT, merge)
    g.connect(merge, fork)
    g.connect(fork, g.OUTPUT, src_port="out0")
    g.connect(fork, merge, src_port="out1")  # back edge: cycle
    with pytest.raises(GraphError, match="cycle"):
        g.validate()


def test_non_divisible_width_mismatch_rejected():
    g = PipelineGraph("g", input_width=10)
    a = g.stage(build_saa2vga_pattern("fifo", width=8, capacity=4), name="a")
    g.connect(g.INPUT, a)
    g.connect(a, g.OUTPUT)
    with pytest.raises(GraphError, match="not a multiple"):
        g.validate()


def test_auto_port_picking_follows_declaration_order():
    g = PipelineGraph("g", input_width=8)
    fork = g.fork("fork", width=8, ways=2)
    a = g.stage(build_saa2vga_pattern("fifo", capacity=4), name="a")
    b = g.stage(build_saa2vga_pattern("fifo", capacity=4), name="b")
    g.connect(g.INPUT, fork)
    first = g.connect(fork, a)
    second = g.connect(fork, b)
    assert first.src_port == "out0"
    assert second.src_port == "out1"
    with pytest.raises(GraphError, match="no free output port"):
        g.connect(fork, g.OUTPUT)
