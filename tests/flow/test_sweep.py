"""Pipeline-composition axes through the existing exploration runner."""

from repro.explore import (
    ExplorationRunner,
    PipelinePoint,
    comparison_report,
    expand_pipeline_grid,
    is_valid_pipeline_point,
    results_table,
)


def test_expand_pipeline_grid_is_deterministic_and_validated():
    points = expand_pipeline_grid(topologies=("chain", "dualpath", "rgbbus"),
                                  stages=(1, 2), fifo_depths=(2, 4),
                                  bus_widths=(8,), frame_sizes=((8, 4),))
    assert points == expand_pipeline_grid(
        topologies=("chain", "dualpath", "rgbbus"), stages=(1, 2),
        fifo_depths=(2, 4), bus_widths=(8,), frame_sizes=((8, 4),))
    # chain sweeps both depths; dualpath/rgbbus keep their fixed depth 2.
    chains = [p for p in points if p.topology == "chain"]
    assert {p.stages for p in chains} == {1, 2}
    assert all(p.stages == 2 for p in points if p.topology != "chain")


def test_invalid_pipeline_points_are_dropped_with_reasons():
    ok, reason = is_valid_pipeline_point(PipelinePoint(topology="rgbbus",
                                                       bus_width=7))
    assert not ok and "dividing 24" in reason
    ok, reason = is_valid_pipeline_point(PipelinePoint(fifo_depth=1))
    assert not ok and "FIFO depth" in reason
    ok, reason = is_valid_pipeline_point(PipelinePoint(topology="warp"))
    assert not ok and "unknown topology" in reason
    assert expand_pipeline_grid(topologies=("rgbbus",), bus_widths=(7,)) == []


def test_pipeline_points_run_through_the_standard_runner():
    points = expand_pipeline_grid(topologies=("chain",), stages=(1, 2),
                                  fifo_depths=(2,), frame_sizes=((8, 4),))
    runner = ExplorationRunner(max_cycles=100_000)
    results = runner.run(points)
    assert len(results) == 2
    for result in results:
        assert result.verified
        assert result.ffs > 0 and result.throughput > 0
    # Deeper pipelines cost proportionally more area.
    by_stages = {res.point.stages: res for res in results}
    assert by_stages[2].ffs > by_stages[1].ffs

    # Memoization: a repeated sweep is served from cache.
    before = runner.evaluations
    again = runner.run(points)
    assert runner.evaluations == before
    assert again == results


def test_narrow_bus_points_scale_their_stimulus():
    """A sub-8-bit datapath must be fed values that fit it; the point pins
    the stimulus ceiling so the identity golden model holds."""
    from repro.explore.runner import evaluate_point

    point = PipelinePoint(topology="chain", stages=1, fifo_depth=2,
                          bus_width=4, frame_width=8, frame_height=4)
    assert point.stimulus_max_value == 0xF
    result = evaluate_point(point, max_cycles=100_000)
    assert result.verified


def test_rgbbus_point_exercises_adapters_in_a_sweep():
    [point] = expand_pipeline_grid(topologies=("rgbbus",),
                                   frame_sizes=((6, 4),))
    assert point.pixel_format == "rgb24"
    runner = ExplorationRunner(max_cycles=200_000)
    [result] = runner.run([point])
    assert result.verified


def test_pipeline_rows_render_in_reports():
    points = expand_pipeline_grid(topologies=("dualpath",),
                                  fifo_depths=(2,), frame_sizes=((8, 4),))
    runner = ExplorationRunner(max_cycles=100_000)
    results = runner.run(points)
    rows = results_table(results)
    assert rows[0]["design"] == "flow/dualpath"
    assert rows[0]["binding"] == "s2.d2.b8"
    report = comparison_report(results, title="Pipelines.")
    assert "flow/dualpath" in report


def test_pipeline_points_memoize_with_verification_config():
    points = expand_pipeline_grid(topologies=("dualpath",), fifo_depths=(2,),
                                  frame_sizes=((8, 4),))
    runner = ExplorationRunner(max_cycles=100_000, verify=True,
                               verify_cycles=400)
    [result] = runner.run(points)
    assert result.coverage_pct is not None
    assert result.coverage_violations == 0
