"""Elaboration: adapter auto-insertion, legacy equivalence, monitors, synth."""

import pytest

from repro.designs import (
    VideoSystem,
    build_dual_path_saa2vga,
    build_rgb_over_bus_pipeline,
    build_saa2vga_pattern,
)
from repro.flow import PipelineGraph, edge_monitors
from repro.metagen import WidthDownConverter, WidthUpConverter
from repro.rtl import Simulator
from repro.synth import estimate_design
from repro.video import flatten, random_frame


# -- automatic width adaptation ----------------------------------------------


def test_adapters_inserted_when_endpoint_widths_disagree():
    pipeline = build_rgb_over_bus_pipeline()
    kinds = [type(a) for a in pipeline.adapters]
    assert kinds == [WidthDownConverter, WidthUpConverter]
    plans = pipeline.adaptation_plans()
    assert [(p.element_width, p.bus_width, p.beats) for p in plans] == \
        [(24, 8, 3), (24, 8, 3)]


def test_no_adapters_when_widths_agree():
    pipeline = build_dual_path_saa2vga()
    assert pipeline.adapters == []


def test_explicit_bus_width_forces_adapter_pair_on_one_edge():
    """Matching 24-bit endpoints over a forced 8-bit bus: down + up on the
    same edge, FIFO buffering the narrow beats."""
    g = PipelineGraph("bus", input_width=24, output_width=24)
    node = g.stage(build_saa2vga_pattern("fifo", width=24, capacity=4),
                   name="copy")
    g.connect(g.INPUT, node, depth=4, bus_width=8)
    g.connect(node, g.OUTPUT, depth=0)
    pipeline = g.elaborate()
    assert [type(a) for a in pipeline.adapters] == \
        [WidthDownConverter, WidthUpConverter]
    [channel] = pipeline.channels
    assert channel.width == 8          # the FIFO sits on the narrow bus
    frame = random_frame(6, 4, seed=3, max_value=(1 << 24) - 1)
    from repro.designs import run_stream_through

    result = run_stream_through(pipeline, frame)
    assert result["pixels"] == flatten(frame)


def test_mixed_width_stage_chain_adapts_each_edge():
    """8-bit front stage feeding a 16-bit back stage: one up-converter."""
    g = PipelineGraph("mix", input_width=8, output_width=16)
    front = g.stage(build_saa2vga_pattern("fifo", width=8, capacity=4),
                    name="front")
    back = g.stage(build_saa2vga_pattern("fifo", width=16, capacity=4),
                   name="back")
    g.connect(g.INPUT, front, depth=0)
    g.connect(front, back, depth=2)
    g.connect(back, g.OUTPUT, depth=0)
    pipeline = g.elaborate()
    assert [type(a) for a in pipeline.adapters] == [WidthUpConverter]
    from repro.designs import run_stream_through
    from repro.video.pixel import join_word

    frame = random_frame(8, 4, seed=5)
    pixels = flatten(frame)
    expected = [join_word(pixels[i:i + 2], 8)
                for i in range(0, len(pixels), 2)]
    result = run_stream_through(pipeline, frame,
                                expected_outputs=len(expected))
    assert result["pixels"] == expected


# -- the legacy harness is a two-edge special case ----------------------------


def test_video_system_via_flow_is_cycle_identical_to_legacy():
    frame = random_frame(10, 6, seed=7)
    pixels = flatten(frame)

    legacy = VideoSystem(build_saa2vga_pattern("fifo", capacity=8),
                         frames=[frame])
    legacy_sim = legacy.simulate(len(pixels), max_cycles=50_000)

    flowed = VideoSystem.via_flow(build_saa2vga_pattern("fifo", capacity=8),
                                  frames=[frame])
    flow_sim = flowed.simulate(len(pixels), max_cycles=50_000)

    assert flowed.received_pixels() == legacy.received_pixels() == pixels
    assert flow_sim.cycles == legacy_sim.cycles


def test_flow_graph_helper_builds_two_wire_edges():
    graph = VideoSystem.flow_graph(build_saa2vga_pattern("fifo", capacity=8))
    assert len(graph.edges) == 2
    assert all(edge.depth == 0 for edge in graph.edges)
    pipeline = graph.elaborate()
    assert pipeline.channels == [] and pipeline.adapters == []


def test_video_system_rejects_negative_stalls():
    design = build_saa2vga_pattern("fifo", capacity=8)
    with pytest.raises(ValueError, match="source_stall"):
        VideoSystem(design, source_stall=-1)
    design = build_saa2vga_pattern("fifo", capacity=8)
    with pytest.raises(ValueError, match="sink_stall"):
        VideoSystem(design, sink_stall=-2)


# -- per-edge verification monitors -------------------------------------------


def test_edge_monitors_cover_every_elastic_channel():
    pipeline = build_dual_path_saa2vga(fifo_depth=4)
    monitors = edge_monitors(pipeline)
    assert len(monitors) == len(pipeline.channels) == 4

    frame = random_frame(8, 4, seed=11)
    pixels = flatten(frame)
    system = VideoSystem(pipeline, frames=[frame])
    sim = Simulator(system)
    for monitor in monitors:
        monitor.attach(sim)
    cycle = 0
    while system.sink.count < len(pixels) and cycle < 10_000:
        sim.settle()
        for monitor in monitors:
            monitor.pre_edge(sim.cycles)
        sim.step()
        cycle += 1
    assert system.received_pixels() == pixels
    for monitor in monitors:
        assert monitor.ok, monitor.violations[:3]
        assert monitor.transactions > 0
    for monitor in monitors:
        monitor.detach()


# -- synthesis aggregation ----------------------------------------------------


def test_pipeline_area_aggregates_over_nodes_and_channels():
    single = estimate_design(build_saa2vga_pattern("fifo", capacity=8))
    dual = estimate_design(build_dual_path_saa2vga(capacity=8))
    # Two copy paths plus split/merge/channels must cost more than one path.
    assert dual.total.ffs > single.total.ffs
    assert dual.total.total_luts > single.total.total_luts
    paths = {entry.path for entry in dual.components}
    assert any(".split" in path for path in paths)
    assert any("_ch" in path for path in paths)


def test_pipeline_shell_is_transparent_wiring():
    pipeline = build_dual_path_saa2vga()
    report = estimate_design(pipeline)
    shell = next(entry for entry in report.components
                 if entry.path == pipeline.name)
    assert shell.transparent
    assert shell.resources.ffs == 0 and shell.resources.luts == 0


def test_describe_summarises_topology():
    info = build_rgb_over_bus_pipeline().describe()
    assert info["auto_adapters"] == 2
    assert info["channels"] == 2
    assert any(edge["adapters"] for edge in info["edges"])
