"""Unit behaviour of the structural pipeline nodes and the stream channel."""

import pytest

from repro.flow import Fork, Join, RoundRobinMerge, RoundRobinSplit, StreamChannel
from repro.rtl import Simulator


def push_cycle(sim, iface, value):
    """Offer ``value`` for one cycle; True when it was accepted."""
    iface.data.force(value)
    iface.push.force(1)
    sim.settle()
    accepted = bool(iface.ready.value)
    sim.step()
    iface.push.force(0)
    return accepted


def pop_cycle(sim, iface):
    """Pop for one cycle; returns the accepted value or None."""
    iface.pop.force(1)
    sim.settle()
    value = iface.data.value if iface.valid.value else None
    sim.step()
    iface.pop.force(0)
    return value


# -- StreamChannel ------------------------------------------------------------


def test_channel_is_fifo_ordered_with_backpressure():
    ch = StreamChannel("ch", width=8, depth=2)
    sim = Simulator(ch)
    assert push_cycle(sim, ch.fill, 0xAA)
    assert push_cycle(sim, ch.fill, 0xBB)
    assert not push_cycle(sim, ch.fill, 0xCC)  # full
    assert ch.occupancy == 2
    assert ch.snapshot() == [0xAA, 0xBB]
    assert pop_cycle(sim, ch.drain) == 0xAA
    assert pop_cycle(sim, ch.drain) == 0xBB
    assert pop_cycle(sim, ch.drain) is None
    assert ch.occupancy == 0


def test_channel_rejects_degenerate_depths():
    with pytest.raises(ValueError):
        StreamChannel("ch", width=8, depth=1)
    with pytest.raises(ValueError):
        StreamChannel("ch", width=8, depth=0)


# -- Fork ---------------------------------------------------------------------


def test_fork_broadcasts_to_every_output():
    fork = Fork("f", width=8, ways=2)
    sim = Simulator(fork)
    assert push_cycle(sim, fork.fill, 7)
    # Both outputs present the element; a second push is blocked until both
    # consumers took it.
    sim.settle()
    assert fork.outs[0].valid.value and fork.outs[1].valid.value
    assert not push_cycle(sim, fork.fill, 9)
    assert pop_cycle(sim, fork.outs[0]) == 7
    sim.settle()
    assert not fork.outs[0].valid.value          # out0 already served
    assert fork.outs[1].valid.value              # out1 still owed
    assert not push_cycle(sim, fork.fill, 9)     # still blocked on out1
    assert pop_cycle(sim, fork.outs[1]) == 7
    assert push_cycle(sim, fork.fill, 9)         # now accepted


def test_fork_needs_two_ways():
    with pytest.raises(ValueError):
        Fork("f", width=8, ways=1)


# -- RoundRobinSplit / RoundRobinMerge ---------------------------------------


def test_split_alternates_outputs_in_rotation():
    split = RoundRobinSplit("s", width=8, ways=2)
    sim = Simulator(split)
    taken = []
    for value in (1, 2, 3, 4):
        split.fill.data.force(value)
        split.fill.push.force(1)
        for out in split.outs:
            out.pop.force(1)
        sim.settle()
        for i, out in enumerate(split.outs):
            if out.valid.value:
                taken.append((i, out.data.value))
        sim.step()
    assert taken == [(0, 1), (1, 2), (0, 3), (1, 4)]


def test_merge_collects_in_rotation():
    merge = RoundRobinMerge("m", width=8, ways=2)
    sim = Simulator(merge)
    sent = {0: [10, 30], 1: [20, 40]}
    received = []
    merge.out.pop.force(1)
    for _ in range(12):
        for i, port in enumerate(merge.ins):
            if sent[i]:
                port.data.force(sent[i][0])
                port.push.force(1)
            else:
                port.push.force(0)
        sim.settle()
        if merge.out.valid.value:
            received.append(merge.out.data.value)
        for i, port in enumerate(merge.ins):
            if port.push.value and port.ready.value:
                sent[i].pop(0)
        sim.step()
        if len(received) == 4:
            break
    assert received == [10, 20, 30, 40]


def test_split_merge_pair_preserves_order():
    """The defining property: split -> (anything FIFO) -> merge is identity."""
    from repro.designs import build_dual_path_saa2vga, run_stream_through
    from repro.video import random_frame, flatten

    frame = random_frame(9, 5, seed=21)
    result = run_stream_through(build_dual_path_saa2vga(), frame)
    assert result["pixels"] == flatten(frame)


# -- Join ---------------------------------------------------------------------


@pytest.mark.parametrize("policy", ["priority", "roundrobin"])
def test_join_merges_everything_exactly_once(policy):
    join = Join("j", width=8, ways=2, policy=policy)
    sim = Simulator(join)
    sent = {0: [1, 2, 3], 1: [9, 8, 7]}
    received = []
    join.out.pop.force(1)
    for _ in range(20):
        for i, port in enumerate(join.ins):
            if sent[i]:
                port.data.force(sent[i][0])
                port.push.force(1)
            else:
                port.push.force(0)
        sim.settle()
        if join.out.valid.value:
            received.append(join.out.data.value)
        for i, port in enumerate(join.ins):
            if port.push.value and port.ready.value:
                sent[i].pop(0)
        sim.step()
        if not sent[0] and not sent[1]:
            break
    assert sorted(received) == [1, 2, 3, 7, 8, 9]
    # Per-input order is preserved even though the interleaving is not.
    assert [v for v in received if v in (1, 2, 3)] == [1, 2, 3]
    assert [v for v in received if v in (7, 8, 9)] == [9, 8, 7]


def test_join_priority_prefers_lowest_index():
    join = Join("j", width=8, ways=2, policy="priority")
    sim = Simulator(join)
    join.ins[0].data.force(5)
    join.ins[0].push.force(1)
    join.ins[1].data.force(6)
    join.ins[1].push.force(1)
    join.out.pop.force(1)
    sim.settle()
    assert join.out.valid.value
    assert join.out.data.value == 5
    assert join.ins[0].ready.value and not join.ins[1].ready.value


def test_join_rejects_unknown_policy():
    with pytest.raises(ValueError, match="policy"):
        Join("j", width=8, ways=2, policy="coin-toss")
