"""End-to-end behaviour of the shipped pipeline scenarios."""

import pytest

from repro.designs import (
    HistogramStage,
    build_blur_histogram_pipeline,
    build_copy_chain,
    build_dual_path_saa2vga,
    build_join_funnel,
    build_rgb_over_bus_pipeline,
    run_stream_through,
)
from repro.video import flatten, golden_blur3x3, random_frame


def test_blur_histogram_pipeline_filters_and_counts():
    width, height = 12, 7
    frame = random_frame(width, height, seed=31)
    blurred = flatten(golden_blur3x3(frame))

    pipeline = build_blur_histogram_pipeline(line_width=width)
    result = run_stream_through(pipeline, frame,
                                expected_outputs=len(blurred),
                                max_cycles=200_000)
    assert result["pixels"] == blurred

    # Drain the statistics tap completely, then compare with the golden
    # histogram of the blurred stream.
    hist = pipeline.find("hist")
    sim = result["simulator"]
    sim.run_until(lambda: hist.samples_counted >= len(blurred), 100_000)
    assert hist.counts() == hist.expected_counts(blurred)


def test_blur_histogram_golden_model_is_the_blur_golden_model():
    pipeline = build_blur_histogram_pipeline(line_width=8)
    pixels = list(range(8 * 4))
    assert pipeline.expected_output(pixels) == \
        pipeline.find("blur").expected_output(pixels)


@pytest.mark.parametrize("stalls", [(0, 0), (2, 0), (0, 3)])
def test_dual_path_round_trips_bit_exact_under_stalls(stalls):
    source_stall, sink_stall = stalls
    frame = random_frame(11, 6, seed=32)
    result = run_stream_through(build_dual_path_saa2vga(), frame,
                                source_stall=source_stall,
                                sink_stall=sink_stall)
    assert result["pixels"] == flatten(frame)


def test_dual_path_actually_uses_both_paths():
    frame = random_frame(10, 4, seed=33)
    pipeline = build_dual_path_saa2vga()
    run_stream_through(pipeline, frame)
    for path in ("path_a", "path_b"):
        assert pipeline.find(path).pixels_processed > 0
    # Round-robin distribution: the split is element-fair.
    a = pipeline.find("path_a").pixels_processed
    b = pipeline.find("path_b").pixels_processed
    assert a == b == len(flatten(frame)) // 2


def test_rgb_over_bus_round_trips_full_24bit_values():
    frame = random_frame(9, 5, seed=34, max_value=(1 << 24) - 1)
    pipeline = build_rgb_over_bus_pipeline()
    result = run_stream_through(pipeline, frame)
    assert result["pixels"] == flatten(frame)
    # Three 8-bit beats per 24-bit pixel through the shared bus.
    assert all(plan.beats == 3 for plan in pipeline.adaptation_plans())


def test_rgb_over_bus_supports_other_divisor_buses():
    frame = random_frame(6, 4, seed=35, max_value=(1 << 24) - 1)
    pipeline = build_rgb_over_bus_pipeline(bus_width=12)
    result = run_stream_through(pipeline, frame)
    assert result["pixels"] == flatten(frame)
    assert all(plan.beats == 2 for plan in pipeline.adaptation_plans())


@pytest.mark.parametrize("stages", [1, 2, 4])
def test_copy_chain_depth_axis_is_identity(stages):
    frame = random_frame(8, 5, seed=36)
    result = run_stream_through(build_copy_chain(stages), frame)
    assert result["pixels"] == flatten(frame)


def test_copy_chain_rejects_zero_stages():
    with pytest.raises(ValueError):
        build_copy_chain(0)


@pytest.mark.parametrize("policy", ["roundrobin", "priority"])
def test_join_funnel_delivers_a_permutation(policy):
    frame = random_frame(10, 5, seed=37)
    pixels = flatten(frame)
    result = run_stream_through(build_join_funnel(policy=policy), frame,
                                max_cycles=100_000)
    assert sorted(result["pixels"]) == sorted(pixels)
    assert len(result["pixels"]) == len(pixels)


def test_histogram_stage_standalone():
    from repro.rtl import Simulator
    from repro.testing import stream_feed

    stage = HistogramStage("hist", width=8, num_bins=8, max_count=64)
    sim = Simulator(stage)
    samples = [7, 7, 255, 0, 128, 64, 64, 64]
    stream_feed(sim, stage.input_fill, samples)
    sim.run_until(lambda: stage.samples_counted >= len(samples), 10_000)
    assert stage.counts() == stage.expected_counts(samples)


def test_pipelines_verify_as_ad_hoc_components():
    """Any elaborated pipeline works with verify() out of the box (the
    graph-level golden model feeds the expected-stream scoreboard)."""
    from repro.verify import verify

    result = verify(build_dual_path_saa2vga(name="adhoc"), seed=3, cycles=800)
    assert result.target == "component/adhoc"
    assert result.ok
    assert result.transactions > 0
