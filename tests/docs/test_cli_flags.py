"""Every public CLI flag must be documented in its operator's guide.

The parsers are the source of truth: any flag added to ``repro.explore``,
``repro.verify`` or ``repro.serve`` without a matching mention in
``docs/exploration.md`` — or to ``repro.search`` without one in
``docs/search.md`` — fails here, so the guides can never silently lag
the tools they document.
"""

from pathlib import Path

import pytest

from repro.explore.__main__ import build_parser as explore_parser
from repro.search.__main__ import build_parser as search_parser
from repro.serve.__main__ import build_parser as serve_parser
from repro.verify.__main__ import build_parser as verify_parser

DOCS = Path(__file__).resolve().parents[2] / "docs"

#: CLI name -> (parser, the guide that must mention every flag).
SURFACES = {
    "explore": (explore_parser(), "exploration.md"),
    "verify": (verify_parser(), "exploration.md"),
    "serve": (serve_parser(), "exploration.md"),
    "search": (search_parser(), "search.md"),
}
GUIDES = {name: (DOCS / guide).read_text()
          for name, (_, guide) in SURFACES.items()}


def public_flags(parser):
    flags = set()
    for action in parser._actions:
        for option in action.option_strings:
            if option.startswith("--") and option != "--help":
                flags.add(option)
    return sorted(flags)


CASES = [(name, flag) for name, (parser, _) in SURFACES.items()
         for flag in public_flags(parser)]


def test_the_parsers_expose_the_expected_surfaces():
    assert "--store" in public_flags(SURFACES["explore"][0])
    assert "--server" in public_flags(SURFACES["explore"][0])
    assert "--store" in public_flags(SURFACES["verify"][0])
    assert "--shard-timeout" in public_flags(SURFACES["serve"][0])
    assert "--compare-grid" in public_flags(SURFACES["search"][0])
    assert "--json-frontier" in public_flags(SURFACES["search"][0])
    assert len(CASES) >= 50, "the four CLIs together expose 50+ flags"


@pytest.mark.parametrize("cli, flag", CASES,
                         ids=[f"{cli}:{flag}" for cli, flag in CASES])
def test_flag_is_documented(cli, flag):
    assert f"`{flag}" in GUIDES[cli], \
        f"{cli}'s {flag} is missing from docs/{SURFACES[cli][1]}"


def test_epilogs_point_at_the_guide():
    for name, (parser, guide) in SURFACES.items():
        if name == "serve":
            continue  # serve's --help is the service surface itself
        assert f"docs/{guide}" in (parser.epilog or ""), \
            f"{name} --help must point operators at docs/{guide}"
