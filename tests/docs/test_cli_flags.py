"""Every public CLI flag must be documented in the operator's guide.

The parsers are the source of truth: any flag added to ``repro.explore``,
``repro.verify`` or ``repro.serve`` without a matching mention in
``docs/exploration.md`` fails here, so the guide can never silently lag
the tools it documents.
"""

from pathlib import Path

import pytest

from repro.explore.__main__ import build_parser as explore_parser
from repro.serve.__main__ import build_parser as serve_parser
from repro.verify.__main__ import build_parser as verify_parser

GUIDE = (Path(__file__).resolve().parents[2] / "docs" /
         "exploration.md").read_text()


def public_flags(parser):
    flags = set()
    for action in parser._actions:
        for option in action.option_strings:
            if option.startswith("--") and option != "--help":
                flags.add(option)
    return sorted(flags)


PARSERS = {
    "explore": explore_parser(),
    "verify": verify_parser(),
    "serve": serve_parser(),
}
CASES = [(name, flag) for name, parser in PARSERS.items()
         for flag in public_flags(parser)]


def test_the_parsers_expose_the_expected_surfaces():
    assert "--store" in public_flags(PARSERS["explore"])
    assert "--server" in public_flags(PARSERS["explore"])
    assert "--store" in public_flags(PARSERS["verify"])
    assert "--shard-timeout" in public_flags(PARSERS["serve"])
    assert len(CASES) >= 30, "the three CLIs together expose 30+ flags"


@pytest.mark.parametrize("cli, flag", CASES,
                         ids=[f"{cli}:{flag}" for cli, flag in CASES])
def test_flag_is_documented(cli, flag):
    assert f"`{flag}" in GUIDE, \
        f"{cli}'s {flag} is missing from docs/exploration.md"


def test_epilogs_point_at_the_guide():
    for name, parser in PARSERS.items():
        if name == "serve":
            continue  # serve's --help is the service surface itself
        assert "docs/exploration.md" in (parser.epilog or ""), \
            f"{name} --help must point operators at the guide"
