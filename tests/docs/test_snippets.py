"""Every fenced code snippet in the documentation must actually run.

``python`` fences are executed in a fresh namespace; ``pycon`` fences run
through doctest (so printed values are checked, not just syntax).
``console`` fences are shell transcripts and are exempt, but they still
count toward the scan so a typo'd fence language cannot silently skip a
snippet.
"""

import doctest
import re
from dataclasses import dataclass
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parents[2]
DOC_FILES = sorted(REPO_ROOT.glob("docs/*.md")) + [REPO_ROOT / "README.md"]
KNOWN_LANGUAGES = {"python", "pycon", "console", "text", ""}
FENCE = re.compile(r"^```(\S*)\s*$")


@dataclass
class Snippet:
    path: Path
    line: int  # 1-based line of the opening fence
    language: str
    source: str

    @property
    def id(self):
        return f"{self.path.name}:{self.line}"


def extract_snippets(path):
    snippets, language, start, body = [], None, 0, []
    for number, line in enumerate(path.read_text().splitlines(), start=1):
        match = FENCE.match(line)
        if match is None:
            if language is not None:
                body.append(line)
            continue
        if language is None:
            language, start, body = match.group(1), number, []
        else:
            snippets.append(Snippet(path, start, language,
                                    "\n".join(body) + "\n"))
            language = None
    assert language is None, f"unterminated fence at {path.name}:{start}"
    return snippets


ALL_SNIPPETS = [s for doc in DOC_FILES for s in extract_snippets(doc)]
RUNNABLE = [s for s in ALL_SNIPPETS if s.language in ("python", "pycon")]


def test_the_scan_found_the_documentation():
    assert len(DOC_FILES) >= 5
    assert len(ALL_SNIPPETS) >= 10
    assert len(RUNNABLE) >= 5, "docs lost their runnable snippets?"


@pytest.mark.parametrize(
    "snippet", ALL_SNIPPETS, ids=lambda s: s.id)
def test_fence_language_is_recognised(snippet):
    # A misspelled language ("pyton") would dodge execution forever.
    assert snippet.language in KNOWN_LANGUAGES, \
        f"unknown fence language {snippet.language!r} in {snippet.id}"


@pytest.mark.parametrize(
    "snippet", RUNNABLE, ids=lambda s: s.id)
def test_snippet_runs(snippet):
    if snippet.language == "python":
        code = compile(snippet.source, snippet.id, "exec")
        exec(code, {"__name__": f"docsnippet_{snippet.line}"})
        return
    parser = doctest.DocTestParser()
    test = parser.get_doctest(snippet.source, {}, snippet.id,
                              str(snippet.path), snippet.line)
    runner = doctest.DocTestRunner(verbose=False,
                                   optionflags=doctest.ELLIPSIS)
    results = runner.run(test)
    assert results.failed == 0, \
        f"{results.failed} doctest failure(s) in {snippet.id}"
    assert results.attempted > 0
