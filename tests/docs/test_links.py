"""Intra-repository references in the documentation must resolve.

Two kinds of reference are checked across ``docs/*.md`` and ``README.md``:
markdown links with relative targets, and backticked repository paths
(`docs/...`, `src/...`, `tests/...`, ...).  Either kind going stale is
exactly the documentation debt this suite exists to prevent.
"""

import re
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parents[2]
DOC_FILES = sorted(REPO_ROOT.glob("docs/*.md")) + [REPO_ROOT / "README.md"]

MARKDOWN_LINK = re.compile(r"\[[^\]]+\]\(([^)#\s]+)[^)]*\)")
BACKTICKED_PATH = re.compile(
    r"`((?:docs|src|tests|benchmarks|examples|\.github)/[^`\s]+)`")


def iter_references(path):
    text = path.read_text()
    for match in MARKDOWN_LINK.finditer(text):
        target = match.group(1)
        if "://" not in target and not target.startswith("mailto:"):
            yield target
    for match in BACKTICKED_PATH.finditer(text):
        yield match.group(1)


def resolvable(target):
    # `path::test_name` selectors point at the file part only; templated
    # paths (`<key>`-style placeholders) are illustrative, not literal.
    target = target.split("::")[0]
    if "<" in target or ">" in target:
        return True
    if "*" in target:
        return bool(list(REPO_ROOT.glob(target)))
    return (REPO_ROOT / target).exists()


CASES = sorted({(doc.name, ref)
                for doc in DOC_FILES for ref in iter_references(doc)})


def test_the_scan_found_references():
    assert len(CASES) >= 20, "the docs should be dense with repo paths"
    assert any(ref == "docs/exploration.md" for _, ref in CASES), \
        "the operator guide must be cross-linked"


@pytest.mark.parametrize(
    "doc, ref", CASES, ids=[f"{doc}:{ref}" for doc, ref in CASES])
def test_reference_resolves(doc, ref):
    assert resolvable(ref), f"{doc} references missing path {ref!r}"
