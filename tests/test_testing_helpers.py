"""Tests for the reusable test-bench drivers in :mod:`repro.testing`."""

import pytest

from repro.core import make_container, make_iterator
from repro.rtl import Component, SimulationError, Simulator
from repro.testing import (
    iterator_read,
    iterator_seek,
    iterator_write,
    settle_condition,
    stream_drain,
    stream_feed,
    stream_feed_and_drain,
)


def buffer_fixture(binding="fifo", capacity=8):
    top = Component("top")
    rb = top.child(make_container("read_buffer", binding, "rb", width=8,
                                  capacity=capacity))
    return top, rb, Simulator(top)


def vector_fixture():
    top = Component("top")
    vec = top.child(make_container("vector", "bram", "vec", width=8, capacity=8))
    it = top.child(make_iterator(vec, "random", readable=True, writable=True,
                                 name="it"))
    return top, vec, it, Simulator(top)


def test_stream_feed_then_drain_separately():
    _top, rb, sim = buffer_fixture()
    cycles = stream_feed(sim, rb.fill, [1, 2, 3])
    assert cycles >= 3
    assert stream_drain(sim, rb.source, 3) == [1, 2, 3]


def test_stream_feed_and_drain_round_trip():
    _top, rb, sim = buffer_fixture()
    data = list(range(20))
    assert stream_feed_and_drain(sim, rb.fill, rb.source, data) == data


def test_stream_drain_times_out_when_no_data():
    _top, rb, sim = buffer_fixture()
    with pytest.raises(SimulationError):
        stream_drain(sim, rb.source, 1, max_cycles=20)


def test_stream_feed_times_out_when_blocked():
    _top, rb, sim = buffer_fixture(capacity=2)
    with pytest.raises(SimulationError):
        stream_feed(sim, rb.fill, [1, 2, 3, 4, 5], max_cycles=30)


def test_stream_feed_and_drain_times_out_on_stall():
    _top, rb, sim = buffer_fixture()
    with pytest.raises(SimulationError):
        # Ask for more elements than will ever be produced.
        stream_feed_and_drain(sim, rb.fill, rb.source, [1, 2], expected=5,
                              max_cycles=50)


def test_iterator_helpers_round_trip():
    _top, vec, it, sim = vector_fixture()
    for value in (10, 20, 30):
        iterator_write(sim, it.iface, value)
    iterator_seek(sim, it.iface, 1)
    assert iterator_read(sim, it.iface, advance=False) == 20
    iterator_seek(sim, it.iface, 0)
    assert [iterator_read(sim, it.iface) for _ in range(3)] == [10, 20, 30]


def test_iterator_read_timeout_when_not_readable():
    top = Component("top")
    wb = top.child(make_container("write_buffer", "fifo", "wb", width=8, capacity=4))
    wit = top.child(make_iterator(wb, "forward", writable=True, name="wit"))
    sim = Simulator(top)
    with pytest.raises(SimulationError):
        iterator_read(sim, wit.iface, max_cycles=10)


def test_iterator_write_timeout_when_full():
    top = Component("top")
    wb = top.child(make_container("write_buffer", "fifo", "wb", width=8, capacity=2))
    wit = top.child(make_iterator(wb, "forward", writable=True, name="wit"))
    sim = Simulator(top)
    iterator_write(sim, wit.iface, 1)
    iterator_write(sim, wit.iface, 2)
    with pytest.raises(SimulationError):
        iterator_write(sim, wit.iface, 3, max_cycles=10)


def test_settle_condition_returns_cycle_count():
    _top, rb, sim = buffer_fixture()
    stream_feed(sim, rb.fill, [7])
    used = settle_condition(sim, lambda: rb.source.valid.value == 1, 100)
    assert used >= 0
    assert rb.source.data.value == 7


# -- seeded randomized helpers (repro.verify.rng backed) ---------------------


def test_random_stream_schedule_is_seed_deterministic():
    from repro.testing import random_stream_schedule

    first = random_stream_schedule(7, 100)
    assert first == random_stream_schedule(7, 100)
    assert first != random_stream_schedule(8, 100)
    assert len(first) == 100
    assert all(p in (0, 1) and q in (0, 1) and 0 <= d <= 255
               for p, d, q in first)


def test_randomized_feed_and_drain_preserves_fifo_order():
    from repro.testing import randomized_feed_and_drain

    _top, rb, sim = buffer_fixture(capacity=4)
    sent, received = randomized_feed_and_drain(sim, rb.fill, rb.source,
                                               seed=13, cycles=400)
    assert len(sent) > 50
    # Everything received came out in the order it went in; anything still
    # buffered is the tail of the accepted stream.
    assert received == sent[:len(received)]
    assert rb.snapshot() == sent[len(received):]


def test_randomized_helper_failure_names_the_seed():
    from repro.testing import randomized_feed_and_drain

    top, rb, sim = buffer_fixture(capacity=4)
    # Detach the simulator by attaching a second one to the hierarchy: the
    # schedule then dies mid-run with a SimulationError, and the helper
    # must append the reproducing seed to it.
    Simulator(top)
    with pytest.raises(SimulationError, match="REPRO_SEED=99"):
        randomized_feed_and_drain(sim, rb.fill, rb.source, seed=99,
                                  cycles=10)
