"""Smoke tests: every shipped example runs to completion and reports success.

Examples are part of the deliverable API surface; running them in CI keeps
them from rotting as the library evolves.
"""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parents[2] / "examples"

EXPECTATIONS = {
    "quickstart.py": ["Same model, two bindings"],
    "saa2vga_pipeline.py": ["[OK]", "Table 3"],
    "blur_filter.py": ["bit-exact", "Table 3"],
    "vhdl_codegen.py": ["entity rbuffer_fifo is", "entity rbuffer_sram is",
                        "VHDL design units"],
    "pixel_format_migration.py": ["bit-exact", "narrow-bus cost factor"],
    "convolution_gallery.py": ["bit-exact", "edge"],
    "design_space_explorer.py": ["Pareto front", "recommendations"],
    "batch_sweep.py": ["Batched sweep", "points verified", "memo hits",
                       "cheapest point", "fastest point"],
    "pipeline_compose.py": ["BIT-EXACT", "auto-inserted adapters",
                            "histogram", "element-fair split"],
}


def run_example(name: str) -> str:
    result = subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / name)],
        capture_output=True, text=True, timeout=600, check=False)
    assert result.returncode == 0, (
        f"{name} exited with {result.returncode}:\n{result.stderr[-2000:]}")
    return result.stdout


def test_examples_directory_is_complete():
    present = {path.name for path in EXAMPLES_DIR.glob("*.py")}
    assert set(EXPECTATIONS) <= present


@pytest.mark.parametrize("name", sorted(EXPECTATIONS))
def test_example_runs_and_reports_success(name):
    stdout = run_example(name)
    for marker in EXPECTATIONS[name]:
        assert marker in stdout, f"{name}: expected {marker!r} in output"
    assert "MISMATCH" not in stdout
    assert "Traceback" not in stdout
