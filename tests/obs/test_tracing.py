"""Span recording: nesting, ring-buffer bounds, session hygiene."""

import threading

import pytest

from repro.obs import tracing


@pytest.fixture(autouse=True)
def _clean_tracing():
    """Every test starts and ends with tracing off and the buffer drained."""
    tracing.disable()
    tracing.drain()
    yield
    tracing.disable()
    tracing.drain()


def test_disabled_span_is_the_shared_null_singleton():
    assert tracing.span("x") is tracing.NULL_SPAN
    assert tracing.span("y", a=1) is tracing.NULL_SPAN
    with tracing.span("z") as sp:
        sp.event("nothing")  # no-ops, records nothing
    assert tracing.records() == []


def test_span_records_complete_event_with_duration():
    tracing.enable()
    with tracing.span("settle", strategy="compiled"):
        pass
    tracing.disable()
    (record,) = tracing.records()
    assert record["name"] == "settle"
    assert record["ph"] == "X"
    assert record["dur"] >= 0
    assert record["ts"] >= 0
    assert record["parent"] is None
    assert record["args"] == {"strategy": "compiled"}


def test_nesting_assigns_parent_ids():
    tracing.enable()
    with tracing.span("outer") as outer:
        with tracing.span("inner"):
            tracing.add_event("marker", shard=3)
    tracing.disable()
    by_name = {r["name"]: r for r in tracing.records()}
    assert by_name["inner"]["parent"] == outer.span_id
    assert by_name["outer"]["parent"] is None
    assert by_name["marker"]["ph"] == "i"
    assert by_name["marker"]["parent"] == by_name["inner"]["id"]
    assert by_name["marker"]["args"] == {"shard": 3}


def test_span_ids_are_unique_and_monotonic():
    tracing.enable()
    for _ in range(5):
        with tracing.span("s"):
            pass
    tracing.disable()
    ids = [r["id"] for r in tracing.records()]
    assert ids == sorted(ids)
    assert len(set(ids)) == 5


def test_ring_buffer_caps_and_counts_drops():
    tracing.enable(capacity=3)
    for i in range(7):
        with tracing.span(f"s{i}"):
            pass
    tracing.disable()
    stats = tracing.stats()
    assert stats["recorded"] == 3
    assert stats["dropped"] == 4
    assert stats["capacity"] == 3
    # the *newest* records survive
    assert [r["name"] for r in tracing.records()] == ["s4", "s5", "s6"]


def test_bad_capacity_rejected():
    with pytest.raises(ValueError):
        tracing.enable(capacity=0)


def test_drain_empties_buffer():
    tracing.enable()
    with tracing.span("once"):
        pass
    assert len(tracing.drain()) == 1
    assert tracing.records() == []


def test_stale_open_span_does_not_parent_into_next_session():
    tracing.enable()
    leaked = tracing.span("leaked")
    leaked.__enter__()  # never exited: simulates an abandoned span
    tracing.disable()
    tracing.enable()
    with tracing.span("fresh"):
        pass
    tracing.disable()
    fresh = [r for r in tracing.records() if r["name"] == "fresh"]
    assert fresh and fresh[0]["parent"] is None


def test_threads_get_independent_stacks():
    tracing.enable()
    done = threading.Event()

    def other():
        with tracing.span("other-root"):
            pass
        done.set()

    with tracing.span("main-root"):
        t = threading.Thread(target=other)
        t.start()
        t.join()
    tracing.disable()
    assert done.is_set()
    by_name = {r["name"]: r for r in tracing.records()}
    # the other thread's span is a root, NOT a child of main's open span
    assert by_name["other-root"]["parent"] is None
    assert by_name["other-root"]["tid"] != by_name["main-root"]["tid"]


def test_event_helper_on_live_span():
    tracing.enable()
    with tracing.span("parent") as sp:
        sp.event("tick", n=1)
    tracing.disable()
    by_name = {r["name"]: r for r in tracing.records()}
    assert by_name["tick"]["parent"] == by_name["parent"]["id"]


def test_null_span_accepts_late_arg_writes():
    sp = tracing.span("whatever")
    with sp:
        sp.args["cycles"] = 12  # instrumented code paths do this
    assert tracing.records() == []
