"""repro.obs.distributed: context propagation, worker capture, fork hygiene.

The fork-inheritance test is the regression guard for the bug this module
exists to prevent: under the ``fork`` start method a worker begins life
with the parent's metric counters and tracing ring buffer, and without
:func:`reset_worker_telemetry` its first shipped delta would re-count
everything the manager ever did.
"""

import multiprocessing

import pytest

from repro.obs import tracing
from repro.obs.distributed import (
    JobTrace,
    ShardCapture,
    TraceContext,
    counter_deltas,
    fold_counter_deltas,
    reset_worker_telemetry,
    timeline_report,
)
from repro.obs.metrics import REGISTRY


@pytest.fixture(autouse=True)
def clean_telemetry():
    """Every test starts and ends with worker-fresh telemetry state."""
    reset_worker_telemetry()
    yield
    reset_worker_telemetry()


# -- context --------------------------------------------------------------------


def test_trace_context_round_trips():
    context = TraceContext("sweep-1", parent_id=7, epoch_ns=123, capacity=10)
    assert TraceContext.from_dict(context.to_dict()) == context


def test_trace_context_rejects_missing_keys():
    with pytest.raises(ValueError, match="missing keys"):
        TraceContext.from_dict({"trace_id": "x"})


# -- fork hygiene (the satellite regression test) -------------------------------


def _forked_child(conn):
    """Report the telemetry a forked process sees before/after the reset."""
    inherited = {
        "counters": dict(REGISTRY.counters()),
        "tracing_active": tracing.enabled(),
        "buffered": tracing.stats()["recorded"],
    }
    reset_worker_telemetry()
    clean = {
        "counters": dict(REGISTRY.counters()),
        "tracing_active": tracing.enabled(),
        "buffered": tracing.stats()["recorded"],
        "first_delta": counter_deltas(),
    }
    conn.send((inherited, clean))
    conn.close()


def test_fork_inherits_parent_telemetry_and_reset_scrubs_it():
    # Parent state a worker must never re-ship: live counters and an
    # active tracing session with buffered spans.
    REGISTRY.inc("fork_sentinel_ops", 1000)
    tracing.enable(64)
    with tracing.span("parent.work"):
        pass
    ctx = multiprocessing.get_context("fork")
    parent_conn, child_conn = ctx.Pipe()
    process = ctx.Process(target=_forked_child, args=(child_conn,))
    process.start()
    child_conn.close()
    inherited, clean = parent_conn.recv()
    process.join(10)
    tracing.reset()

    # The hazard is real: fork copies everything.  (This half *documents
    # the failure mode* — without reset_worker_telemetry, `inherited` is
    # what a worker's first shipped delta would be built from.)
    assert inherited["counters"].get("fork_sentinel_ops") == 1000
    assert inherited["tracing_active"]
    assert inherited["buffered"] >= 1

    # ... and the reset scrubs all of it: the worker's first delta must
    # not re-count one unit of parent-side activity.
    assert clean["counters"] == {}
    assert not clean["tracing_active"]
    assert clean["buffered"] == 0
    assert clean["first_delta"] == {}


# -- counter deltas -------------------------------------------------------------


def test_counter_deltas_are_disjoint_increments():
    REGISTRY.inc("delta_ops", 5)
    assert counter_deltas() == {"delta_ops": 5}
    assert counter_deltas() == {}  # nothing new since the last call
    REGISTRY.inc("delta_ops", 2)
    assert counter_deltas() == {"delta_ops": 2}


def test_fold_counter_deltas_accumulates_pool_wide():
    before = REGISTRY.counters().get("folded_ops", 0)
    fold_counter_deltas({"folded_ops": 3})
    fold_counter_deltas({"folded_ops": 4})
    assert REGISTRY.counters()["folded_ops"] - before == 7


def test_fold_counter_deltas_skips_junk_and_kind_conflicts():
    REGISTRY.set_gauge("a_gauge", 1.0)
    fold_counter_deltas({"a_gauge": 5, "bad": -1, "worse": "x"})  # no raise
    assert "bad" not in REGISTRY.counters()
    fold_counter_deltas(None)  # a lost reply folds nothing, quietly


# -- ShardCapture ---------------------------------------------------------------


def test_untraced_capture_ships_only_counters_and_never_enables():
    capture = ShardCapture.begin(None)
    assert not tracing.enabled()
    REGISTRY.inc("shard_ops", 2)
    payload = capture.finish()
    assert payload["counters"] == {"shard_ops": 2}
    assert "spans" not in payload
    assert not tracing.enabled()


def test_traced_capture_ships_spans_under_worker_root():
    context = TraceContext("sweep-x", parent_id=9, epoch_ns=1, capacity=256)
    capture = ShardCapture.begin(context.to_dict())
    assert tracing.enabled()
    with tracing.span("evaluate"):
        pass
    payload = capture.finish()
    assert not tracing.enabled()
    assert payload["dropped_spans"] == 0
    names = {r["name"] for r in payload["spans"]}
    assert {"worker.shard", "evaluate"} <= names
    root = next(r for r in payload["spans"] if r["name"] == "worker.shard")
    assert root["parent"] is None  # re-parented manager-side, not here
    inner = next(r for r in payload["spans"] if r["name"] == "evaluate")
    assert inner["parent"] == root["id"]


def test_malformed_context_degrades_to_untraced():
    capture = ShardCapture.begin({"trace_id": "x"})  # missing keys
    assert capture.context is None
    assert not tracing.enabled()
    assert "spans" not in capture.finish()


def test_capture_finish_is_idempotent():
    capture = ShardCapture.begin(
        TraceContext("s", 1, epoch_ns=0).to_dict())
    assert capture.finish() is capture.finish()


def test_span_limit_truncates_and_counts():
    context = TraceContext("sweep-big", parent_id=1, epoch_ns=0,
                           capacity=1000)
    capture = ShardCapture.begin(context.to_dict())
    for _ in range(20):
        with tracing.span("tiny"):
            pass
    payload = capture.finish(span_limit=5)
    assert len(payload["spans"]) == 5
    assert payload["dropped_spans"] == 16  # 21 recorded, newest 5 kept


# -- JobTrace bounds ------------------------------------------------------------


def test_job_trace_capacity_bounds_and_counts_drops():
    trace = JobTrace("sweep-b", capacity=2, epoch_ns=0, pid=1)
    trace.add_span("a", 0, 1, parent=trace.root_id)
    trace.add_span("b", 1, 2, parent=trace.root_id)
    trace.add_span("c", 2, 3, parent=trace.root_id)  # over capacity
    assert len(trace) == 2
    assert trace.dropped == 1
    header = trace.export_records()[0]
    assert header["args"]["dropped_spans"] == 1


def test_job_trace_mark_lost_flags_the_attempt():
    trace = JobTrace("sweep-l", epoch_ns=0, pid=1)
    span_id = trace.next_id()
    trace.mark_lost(3, span_id, start_ns=10, attempt=2, reason="SIGKILL")
    trace.finish(end_ns=100)
    lost = next(r for r in trace.export_records()
                if r.get("ph") == "X" and r["name"] == "shard")
    assert lost["args"]["telemetry"] == "lost"
    assert lost["args"]["attempt"] == 2
    assert trace.lost_shards == 1


# -- timeline -------------------------------------------------------------------


def build_timeline_trace():
    trace = JobTrace("sweep-t", epoch_ns=0, pid=1)
    for shard_id, (pid, start, dur) in enumerate(
            [(2001, 10, 100), (2002, 10, 400), (2001, 120, 90)]):
        shard_span = trace.next_id()
        worker = [{"name": "worker.shard", "ph": "X", "ts": 2,
                   "dur": dur - 4, "pid": pid, "tid": 1, "id": 1,
                   "parent": None, "args": {}}]
        trace.merge_worker({"pid": pid, "epoch_ns": start + 2,
                            "spans": worker}, shard_span)
        trace.add_span("shard", start, start + dur, parent=trace.root_id,
                       span_id=shard_span, shard=shard_id, attempt=1,
                       worker_pid=pid)
    trace.finish(end_ns=500, state="done")
    return trace.export_records()


def test_timeline_report_sections():
    report = timeline_report(build_timeline_trace())
    assert "per-worker utilization" in report
    assert "pid=2001" in report and "pid=2002" in report
    assert "shard breakdown (3 attempt(s))" in report
    assert "critical path" in report
    # shard 1 takes 400ms vs median 100ms -> flagged as a straggler
    assert "straggler: shard 1" in report


def test_timeline_report_flags_retries_and_losses():
    trace = JobTrace("sweep-r", epoch_ns=0, pid=1)
    lost_span = trace.next_id()
    trace.mark_lost(0, lost_span, start_ns=5, attempt=1, reason="SIGKILL")
    trace.add_span("shard", 20, 40, parent=trace.root_id, shard=0,
                   attempt=2, worker_pid=2100)
    trace.finish(end_ns=50)
    report = timeline_report(trace.export_records())
    assert "retry: shard 0 attempt 2" in report
    assert "lost telemetry: shard 0" in report


def test_timeline_report_handles_empty_and_spanless_traces():
    assert "nothing to analyze" in timeline_report([])
    assert "nothing to analyze" in timeline_report(
        [{"name": "e", "ph": "i", "ts": 0, "pid": 1, "tid": 1,
          "id": 1, "parent": None, "args": {}}])
