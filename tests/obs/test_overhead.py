"""Disabled telemetry must cost (provably) nothing on the hot loop.

Two guarantees, both tier-1:

* a settle/step loop with telemetry off emits **zero** span records and
  never even calls :func:`repro.obs.tracing.span`;
* the per-cycle loop allocates **no objects from the obs package** — the
  dispatch check at the top of ``Simulator.step`` is the entire cost.

The throughput side of the same promise is pinned by the
``compiled-obs-off`` floor in ``benchmarks/check_regression.py``.
"""

import os
import tracemalloc

import pytest

import repro.obs
from repro.obs import profile, tracing
from repro.rtl import Component, Simulator


class Counter(Component):
    def __init__(self, width=16):
        super().__init__("counter")
        self.value = self.state(width)
        self.parity = self.signal(1)

        @self.comb
        def comb_parity():
            self.parity.next = self.value.value & 1

        @self.seq
        def count():
            self.value.next = self.value.value + 1


@pytest.fixture(autouse=True)
def _telemetry_off():
    tracing.disable()
    tracing.drain()
    profile.disable()
    yield
    tracing.disable()
    tracing.drain()
    profile.disable()


@pytest.mark.parametrize("strategy", ["event", "fixpoint", "compiled"])
def test_disabled_step_emits_zero_spans_and_never_calls_span(
        strategy, monkeypatch):
    sim = Simulator(Counter(), strategy=strategy)

    def exploded(*args, **kwargs):
        raise AssertionError("tracing.span() called on the disabled path")

    monkeypatch.setattr(tracing, "span", exploded)
    sim.step(100)
    sim.run_until(lambda: sim.cycles >= 200)
    sim.settle()
    assert tracing.records() == []
    assert tracing.stats()["recorded"] == 0


@pytest.mark.parametrize("strategy", ["event", "compiled"])
def test_disabled_step_allocates_nothing_from_obs(strategy):
    """tracemalloc, filtered to repro/obs/*.py: zero new allocations."""
    obs_dir = os.path.dirname(repro.obs.__file__)
    filters = [tracemalloc.Filter(True, os.path.join(obs_dir, "*"))]
    sim = Simulator(Counter(), strategy=strategy)
    sim.step(50)  # warm every lazy path before measuring
    tracemalloc.start()
    try:
        before = tracemalloc.take_snapshot().filter_traces(filters)
        sim.step(500)
        after = tracemalloc.take_snapshot().filter_traces(filters)
    finally:
        tracemalloc.stop()
    grown = [diff for diff in after.compare_to(before, "lineno")
             if diff.size_diff > 0 or diff.count_diff > 0]
    assert not grown, (
        "telemetry-disabled step loop allocated in repro.obs: "
        + "; ".join(str(d) for d in grown))


def test_disabled_profiler_records_nothing():
    sim = Simulator(Counter(), strategy="compiled")
    sim.step(100)
    assert profile.active() is None


def test_enable_then_disable_restores_the_fast_path(monkeypatch):
    """After a telemetry session ends, stepping is plain again."""
    sim = Simulator(Counter(), strategy="compiled")
    tracing.enable()
    profiler = profile.enable()
    sim.step(10)
    tracing.disable()
    profile.disable()
    assert profiler.strategies["compiled"]["cycles"] == 10
    recorded = len(tracing.records())
    assert recorded >= 1  # the instrumented batch span

    calls = []
    monkeypatch.setattr(
        tracing, "span",
        lambda *a, **k: calls.append(a) or tracing.NULL_SPAN)
    sim.step(100)
    assert calls == []
    assert len(tracing.records()) == recorded
