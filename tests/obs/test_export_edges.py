"""Export edge cases: empty / single-span traces, collision-safe merges,
and byte-identical merge determinism.

The merge guarantees pinned here are what make a distributed trace a
*diffable artifact*: remapping two workers' colliding local span ids must
preserve each worker's internal parentage, and exporting the same merged
state twice must produce byte-identical NDJSON.
"""

import json

from repro.obs import export
from repro.obs.distributed import JobTrace, remap_worker_records


def span(name, ts, dur, span_id, parent=None, pid=1000, **args):
    return {"name": name, "ph": "X", "ts": ts, "dur": dur, "pid": pid,
            "tid": 1, "id": span_id, "parent": parent, "args": args}


# -- degenerate traces ----------------------------------------------------------


def test_empty_trace_round_trips_and_is_flagged(tmp_path):
    path = tmp_path / "empty.ndjson"
    export.write_ndjson([], path)
    assert export.read_trace(path) == []
    # An empty Chrome payload is structurally *invalid* — a trace with
    # zero events is always a bug upstream, not a healthy artifact.
    problems = export.validate_chrome(export.to_chrome([]))
    assert any("zero events" in p for p in problems)
    assert "0 span(s)" in export.summarize([])


def test_single_span_trace_exports_and_summarizes(tmp_path):
    records = [span("settle", 0, 1_000_000, 1)]
    path = tmp_path / "one.ndjson"
    export.write_ndjson(records, path)
    loaded = export.read_trace(path)
    assert loaded == records
    assert export.validate_chrome(export.to_chrome(loaded)) == []
    root, fraction = export.attribution(loaded)
    assert root["name"] == "settle"
    assert fraction == 0.0  # no children: nothing attributed, no crash
    assert "settle" in export.summarize(loaded)


def test_single_span_chrome_conversion_preserves_duration(tmp_path):
    payload = export.to_chrome([span("settle", 2_000, 1_500_000, 1)])
    (event,) = payload["traceEvents"]
    assert event["ts"] == 2.0          # ns -> us
    assert event["dur"] == 1500.0


# -- merge: colliding worker-local ids ------------------------------------------


def worker_buffer(pid):
    """Two spans with local ids 1 and 2 — every worker produces these."""
    return [
        span("inner", 100, 50, 2, parent=1, pid=pid),
        span("worker.shard", 0, 200, 1, parent=None, pid=pid),
    ]


def test_merge_remaps_colliding_local_ids():
    trace = JobTrace("sweep-t", epoch_ns=1_000, pid=99)
    shard_a = trace.next_id()
    shard_b = trace.next_id()
    trace.merge_worker({"pid": 4001, "epoch_ns": 1_000,
                        "spans": worker_buffer(4001)}, shard_a)
    trace.merge_worker({"pid": 4002, "epoch_ns": 1_000,
                        "spans": worker_buffer(4002)}, shard_b)
    records = trace.export_records()
    spans = [r for r in records if r["ph"] == "X"]
    ids = [r["id"] for r in spans]
    assert len(ids) == len(set(ids)) == 4, \
        "colliding worker-local ids must remap to globally unique ids"
    # Parentage survives the remap: each worker's inner span still points
    # at its *own* root, and each root at its shard's manager span.
    for pid, shard_span in ((4001, shard_a), (4002, shard_b)):
        root = next(r for r in spans
                    if r["pid"] == pid and r["name"] == "worker.shard")
        inner = next(r for r in spans
                     if r["pid"] == pid and r["name"] == "inner")
        assert root["parent"] == shard_span
        assert inner["parent"] == root["id"]


def test_merge_points_orphaned_parents_at_the_shard_span():
    # A child of a ring-evicted span arrives with a dangling parent id.
    remapped, next_id = remap_worker_records(
        [span("orphan", 10, 5, 7, parent=12345)],
        id_start=50, parent_id=3, ts_offset_ns=1_000)
    (record,) = remapped
    assert record["id"] == 50
    assert record["parent"] == 3
    assert record["ts"] == 1_010
    assert next_id == 51


# -- merge determinism ----------------------------------------------------------


def build_merged_trace():
    trace = JobTrace("sweep-d", epoch_ns=5_000, pid=77)
    shard = trace.next_id()
    trace.merge_worker({"pid": 4100, "epoch_ns": 6_000,
                        "spans": worker_buffer(4100),
                        "dropped_spans": 0}, shard)
    trace.add_span("shard", 10, 300, parent=trace.root_id, span_id=shard,
                   shard=0, attempt=1, worker_pid=4100)
    trace.finish(end_ns=400, state="done")
    return trace


def test_merge_is_deterministic_byte_identical_ndjson(tmp_path):
    paths = []
    for name in ("a.ndjson", "b.ndjson"):
        path = tmp_path / name
        export.write_ndjson(build_merged_trace().export_records(), path)
        paths.append(path)
    assert paths[0].read_bytes() == paths[1].read_bytes(), \
        "same inputs must merge to byte-identical NDJSON"


def test_merged_export_header_and_lanes_lead_the_file(tmp_path):
    records = build_merged_trace().export_records()
    header = records[0]
    assert header["ph"] == "M" and header["name"] == export.TRACE_META
    assert header["args"]["trace_id"] == "sweep-d"
    assert header["args"]["workers"] == [4100]
    lanes = [r for r in records if r["name"] == export.PROCESS_NAME]
    assert {lane["pid"] for lane in lanes} == {77, 4100}
    # and the whole thing is a valid, fully-labeled multi-pid trace
    assert export.validate_chrome(export.to_chrome(records)) == []


def test_unlabeled_multi_pid_trace_still_flagged():
    records = [span("a", 0, 10, 1, pid=1), span("b", 20, 10, 2, pid=2)]
    problems = export.validate_chrome(export.to_chrome(records))
    assert any("unstable pid" in p for p in problems)


def test_dropped_spans_header_feeds_summary_warning():
    records = [export.meta_record(dropped_spans=7), span("s", 0, 10, 1)]
    assert export.dropped_spans(records) == 7
    summary = export.summarize(records)
    assert "7 span(s) dropped" in summary
    assert "truncated" in summary


def test_ndjson_lines_are_sorted_key_json(tmp_path):
    # The server's /trace endpoint and write_ndjson must agree byte-for-
    # byte; both rely on sort_keys=True line encoding.
    path = tmp_path / "t.ndjson"
    records = [span("s", 0, 10, 1)]
    export.write_ndjson(records, path)
    line = path.read_text().strip()
    assert line == json.dumps(records[0], sort_keys=True)
