"""Trace integrity: exports validate and round-trip (satellite of the
telemetry PR).

A real traced simulation provides the fixture records, so these tests
cover the actual span taxonomy (compile/analyze/schedule/emit, settle,
explore.point, store.get/put) rather than synthetic dicts.
"""

import json

import pytest

from repro.obs import export, tracing
from repro.obs.__main__ import main as obs_main
from repro.rtl import Component, Simulator


class Blinker(Component):
    def __init__(self):
        super().__init__("blinker")
        self.out = self.state(1)

        @self.seq
        def flip():
            self.out.next = 0 if self.out.value else 1


@pytest.fixture()
def records():
    tracing.disable()
    tracing.drain()
    tracing.enable()
    sim = Simulator(Blinker(), strategy="compiled")
    sim.step(5)
    sim.run_until(lambda: sim.cycles >= 10)
    tracing.add_event("marker", check=True)
    tracing.disable()
    out = tracing.drain()
    assert out, "traced simulation produced no records"
    return out


def test_chrome_export_passes_structural_validation(records):
    chrome = export.to_chrome(records)
    assert export.validate_chrome(chrome) == []


def test_chrome_events_are_sorted_complete_and_single_pid(records):
    events = export.to_chrome(records)["traceEvents"]
    stamps = [e["ts"] for e in events]
    assert stamps == sorted(stamps)
    assert len({e["pid"] for e in events}) == 1
    for event in events:
        assert event["ph"] in ("X", "i")
        if event["ph"] == "X":
            assert isinstance(event["dur"], float)
        else:
            assert event["s"] == "t"


def test_validator_flags_broken_traces():
    assert export.validate_chrome({}) == ["payload has no traceEvents list"]
    assert "zero events" in export.validate_chrome({"traceEvents": []})[0]
    bad = {"traceEvents": [
        {"name": "b", "ph": "X", "ts": 5.0, "dur": 1.0, "pid": 1, "tid": 1},
        {"name": "a", "ph": "X", "ts": 1.0, "dur": 1.0, "pid": 2, "tid": 1},
        {"name": "c", "ph": "B", "ts": 9.0, "pid": 1, "tid": 1},
        {"name": "d", "ph": "X", "ts": 9.0, "pid": 1, "tid": 1},
    ]}
    problems = "\n".join(export.validate_chrome(bad))
    assert "must be sorted" in problems
    assert "unstable pid" in problems
    assert "not a complete" in problems
    assert "without numeric dur" in problems


def test_ndjson_round_trip_is_lossless(records, tmp_path):
    path = tmp_path / "trace.ndjson"
    export.write_ndjson(records, path)
    assert export.read_ndjson(path) == records
    assert export.read_trace(path) == records  # extension dispatch


def test_chrome_file_reads_back_as_records(records, tmp_path):
    path = tmp_path / "trace.json"
    assert export.write_trace(records, path) == "chrome"
    loaded = export.read_trace(path)
    assert len(loaded) == len(records)
    assert {r["name"] for r in loaded} == {r["name"] for r in records}


def test_attribution_covers_compile_pipeline(records):
    """The compile span's analyze/schedule/emit children account for it."""
    root, fraction = export.attribution(
        [r for r in records if r["name"] in
         ("compile", "analyze", "schedule", "emit")])
    assert root["name"] == "compile"
    assert fraction > 0.5


# -- python -m repro.obs ----------------------------------------------------

def test_cli_summarize_round_trips_ndjson(records, tmp_path, capsys):
    path = tmp_path / "trace.ndjson"
    export.write_ndjson(records, path)
    assert obs_main(["summarize", str(path)]) == 0
    out = capsys.readouterr().out
    assert "compile" in out and "settle" in out
    assert "attributed to direct children" in out


def test_cli_convert_then_validate(records, tmp_path, capsys):
    ndjson = tmp_path / "trace.ndjson"
    chrome = tmp_path / "trace.json"
    export.write_ndjson(records, ndjson)
    assert obs_main(["convert", str(ndjson), str(chrome)]) == 0
    payload = json.loads(chrome.read_text())
    assert export.validate_chrome(payload) == []
    assert obs_main(["validate", str(chrome)]) == 0
    assert "is valid" in capsys.readouterr().out


def test_cli_validate_min_attribution(records, tmp_path, capsys):
    path = tmp_path / "trace.ndjson"
    export.write_ndjson(records, path)
    # attribution of this trace's root is high; an impossible floor fails
    assert obs_main(["validate", str(path), "--min-attribution", "101"]) == 1
    assert "INVALID" in capsys.readouterr().err


def test_cli_unreadable_trace_exits_2(tmp_path, capsys):
    missing = tmp_path / "nope.ndjson"
    assert obs_main(["summarize", str(missing)]) == 2
    assert "cannot read trace" in capsys.readouterr().err


def test_cli_corrupt_json_is_error(tmp_path, capsys):
    # a .json file that parses as neither a chrome object nor NDJSON lines
    path = tmp_path / "broken.json"
    path.write_text("{definitely not json\n", encoding="utf-8")
    assert obs_main(["validate", str(path)]) == 2
    assert "cannot read trace" in capsys.readouterr().err


def truncated_trace(tmp_path, records):
    """An NDJSON trace whose header declares ring-buffer truncation."""
    path = tmp_path / "truncated.ndjson"
    export.write_ndjson(
        [export.meta_record(dropped_spans=12)] + records, path)
    return path


def test_cli_validate_warns_on_truncated_trace(records, tmp_path, capsys):
    path = truncated_trace(tmp_path, records)
    assert obs_main(["validate", str(path)]) == 0
    captured = capsys.readouterr()
    assert "is valid" in captured.out
    assert "truncated" in captured.err and "12 span(s) dropped" in captured.err


def test_cli_validate_strict_fails_on_truncated_trace(records, tmp_path,
                                                      capsys):
    path = truncated_trace(tmp_path, records)
    assert obs_main(["validate", str(path), "--strict"]) == 1
    assert "truncated" in capsys.readouterr().err


def test_cli_validate_strict_passes_untruncated(records, tmp_path, capsys):
    path = tmp_path / "clean.ndjson"
    export.write_ndjson([export.meta_record(dropped_spans=0)] + records, path)
    assert obs_main(["validate", str(path), "--strict"]) == 0
    assert "is valid" in capsys.readouterr().out


def test_cli_timeline_on_in_process_trace(records, tmp_path, capsys):
    # timeline degrades gracefully on a single-process trace: the header
    # and critical path render even without worker.shard/shard spans.
    path = tmp_path / "trace.ndjson"
    export.write_ndjson(records, path)
    assert obs_main(["timeline", str(path)]) == 0
    out = capsys.readouterr().out
    assert "timeline:" in out
    assert "critical path" in out
