"""The metrics registry: kinds, labels, thread safety, exposition.

The registry is process-global in production; these tests use private
:class:`MetricsRegistry` instances so they cannot interfere with the
counters other suites read through the :mod:`repro.rtl.instrument` shim.
"""

import threading

import pytest

from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    REGISTRY,
    MetricsRegistry,
    render_prometheus,
)
from repro.rtl import instrument


class TestKinds:
    def test_counter_accumulates_and_returns_new_value(self):
        reg = MetricsRegistry()
        assert reg.inc("hits") == 1
        assert reg.inc("hits", 4) == 5
        assert reg.value("hits") == 5

    def test_unwritten_name_reads_zero(self):
        assert MetricsRegistry().value("never") == 0

    def test_gauge_is_last_write_wins(self):
        reg = MetricsRegistry()
        reg.set_gauge("depth", 7)
        reg.set_gauge("depth", 3)
        assert reg.value("depth") == 3

    def test_histogram_buckets_sum_count(self):
        reg = MetricsRegistry()
        reg.observe("latency", 0.002)
        reg.observe("latency", 0.002)
        reg.observe("latency", 40.0)
        hist = reg.histogram("latency")
        assert hist["count"] == 3
        assert hist["sum"] == pytest.approx(40.004)
        by_bound = dict(hist["buckets"])
        assert by_bound[0.005] == 2       # both 2ms observations
        assert by_bound[60.0] == 1        # the 40s outlier

    def test_kind_conflict_raises(self):
        reg = MetricsRegistry()
        reg.inc("n")
        with pytest.raises(ValueError, match="is a counter"):
            reg.observe("n", 1.0)
        with pytest.raises(ValueError, match="is a counter"):
            reg.set_gauge("n", 1.0)

    def test_labeled_series_are_independent(self):
        reg = MetricsRegistry()
        reg.inc("evals", design="blur")
        reg.inc("evals", design="saa2vga")
        reg.inc("evals", design="blur")
        assert reg.value("evals", design="blur") == 2
        assert reg.value("evals", design="saa2vga") == 1
        # label order never matters
        reg.inc("multi", a="1", b="2")
        assert reg.value("multi", b="2", a="1") == 1

    def test_counters_snapshot_is_unlabeled_counters_only(self):
        reg = MetricsRegistry()
        reg.inc("plain", 3)
        reg.inc("labeled", design="x")
        reg.set_gauge("gauge", 9)
        reg.observe("hist", 1.0)
        assert reg.counters() == {"plain": 3}


class TestThreadSafety:
    def test_concurrent_increments_are_lossless(self):
        """The satellite fix: counter mutation is locked, not GIL-lucky."""
        reg = MetricsRegistry()
        n_threads, n_incs = 8, 2000

        def worker():
            for _ in range(n_incs):
                reg.inc("contended")
                reg.observe("obs", 0.01)

        threads = [threading.Thread(target=worker) for _ in range(n_threads)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert reg.value("contended") == n_threads * n_incs
        assert reg.histogram("obs")["count"] == n_threads * n_incs


class TestInstrumentShim:
    """repro.rtl.instrument and repro.obs share ONE storage."""

    def test_bump_lands_in_global_registry(self):
        before = REGISTRY.value("shim_shared_check")
        instrument.bump("shim_shared_check", 2)
        assert REGISTRY.value("shim_shared_check") == before + 2
        assert instrument.value("shim_shared_check") == before + 2

    def test_registry_inc_visible_through_shim_snapshot(self):
        REGISTRY.inc("registry_side_counter", 5)
        assert instrument.snapshot()["registry_side_counter"] >= 5

    def test_delta_and_simulations_since_contract(self):
        before = instrument.snapshot()
        instrument.bump(instrument.SIMULATOR_CONSTRUCTIONS)
        instrument.bump(instrument.BATCHED_CONSTRUCTIONS, 2)
        diff = instrument.delta(before)
        assert diff[instrument.SIMULATOR_CONSTRUCTIONS] == 1
        assert diff[instrument.BATCHED_CONSTRUCTIONS] == 2
        assert instrument.simulations_since(before) == 3


class TestPrometheusRendering:
    def test_counter_gets_total_suffix_and_type_line(self):
        reg = MetricsRegistry()
        reg.inc("store_hits", 3)
        text = render_prometheus(reg)
        assert "# TYPE repro_store_hits_total counter" in text
        assert "repro_store_hits_total 3" in text

    def test_labels_render_sorted_and_quoted(self):
        reg = MetricsRegistry()
        reg.inc("evals", design="blur", binding="fifo")
        text = render_prometheus(reg)
        assert 'repro_evals_total{binding="fifo",design="blur"} 1' in text

    def test_histogram_renders_cumulative_buckets(self):
        reg = MetricsRegistry()
        reg.observe("shard_seconds", 0.002)
        reg.observe("shard_seconds", 0.002)
        reg.observe("shard_seconds", 200.0)  # beyond the last bound
        text = render_prometheus(reg)
        assert "# TYPE repro_shard_seconds histogram" in text
        # cumulative: every bound >= 0.005 has seen both fast observations
        assert 'repro_shard_seconds_bucket{le="0.005"} 2' in text
        assert 'repro_shard_seconds_bucket{le="120.0"} 2' in text
        assert 'repro_shard_seconds_bucket{le="+Inf"} 3' in text
        assert "repro_shard_seconds_count 3" in text
        counts = [line for line in text.splitlines() if "_bucket" in line]
        assert len(counts) == len(DEFAULT_BUCKETS) + 1

    def test_gauge_renders_without_suffix(self):
        reg = MetricsRegistry()
        reg.set_gauge("queue_depth", 4)
        text = render_prometheus(reg)
        assert "# TYPE repro_queue_depth gauge" in text
        assert "repro_queue_depth 4" in text

    def test_reset_empties_registry(self):
        reg = MetricsRegistry()
        reg.inc("a")
        reg.reset()
        assert reg.counters() == {}
