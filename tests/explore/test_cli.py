"""The ``python -m repro.explore`` command-line interface."""

import json

import pytest

from repro.explore.__main__ import main


def test_design_grid_from_cli_flags(capsys):
    status = main(["--designs", "saa2vga", "--bindings", "fifo",
                   "--capacities", "16", "--frames", "10x6"])
    out = capsys.readouterr().out
    assert status == 0
    assert "saa2vga" in out
    assert "1 point(s) evaluated" in out


def test_pipeline_axes_from_cli_flags(capsys):
    status = main(["--pipelines", "chain", "--stages", "1", "2",
                   "--fifo-depths", "2", "--frames", "8x4"])
    out = capsys.readouterr().out
    assert status == 0
    assert "flow/chain" in out
    assert "s1.d2.b8" in out and "s2.d2.b8" in out
    # Pipeline-only flags must not drag the design grid in.
    assert "saa2vga" not in out


def test_grid_spec_file_and_json_artifact(tmp_path, capsys):
    spec = {
        "designs": ["saa2vga"],
        "bindings": ["fifo"],
        "capacities": [8],
        "frames": ["8x4"],
        "pipelines": {"topologies": ["dualpath"], "fifo_depths": [2],
                      "frames": [[8, 4]]},
    }
    spec_path = tmp_path / "grid.json"
    spec_path.write_text(json.dumps(spec))
    out_path = tmp_path / "results.json"
    status = main(["--grid", str(spec_path), "--json", str(out_path)])
    assert status == 0
    payload = json.loads(out_path.read_text())
    designs = {row["design"] for row in payload["rows"]}
    assert designs == {"saa2vga", "flow/dualpath"}
    assert payload["points"] == 2


def test_cli_flags_override_spec_file(tmp_path, capsys):
    spec_path = tmp_path / "grid.json"
    spec_path.write_text(json.dumps({"designs": ["saa2vga"],
                                     "capacities": [8, 16]}))
    status = main(["--grid", str(spec_path), "--capacities", "4",
                   "--bindings", "fifo", "--frames", "8x4"])
    out = capsys.readouterr().out
    assert status == 0
    assert "1 point(s) evaluated" in out


def test_default_invocation_runs_the_default_grid(capsys):
    assert main(["--quiet"]) == 0
    out = capsys.readouterr().out
    assert out == ""


def test_verify_flag_adds_coverage_columns(capsys):
    status = main(["--designs", "saa2vga", "--bindings", "fifo",
                   "--capacities", "8", "--frames", "8x4",
                   "--verify", "--verify-cycles", "400"])
    out = capsys.readouterr().out
    assert status == 0
    assert "cov%" in out
    assert "functional coverage" in out


def test_bad_frame_spec_exits_with_usage_error():
    with pytest.raises(SystemExit):
        main(["--designs", "saa2vga", "--frames", "16by12"])


def test_empty_grid_is_an_error(capsys):
    status = main(["--designs", "saa2vga", "--bindings", "linebuffer"])
    assert status == 2
