"""``python -m repro.explore --trace/--profile`` end-to-end.

The CLI owns telemetry lifecycle: it enables tracing/profiling before
the sweep, always disables both afterwards, and writes the trace file
even when the run raises.  These tests drive ``main()`` in-process.
"""

import pytest

from repro.explore.__main__ import main as explore_main
from repro.obs import export, profile, tracing


@pytest.fixture(autouse=True)
def _telemetry_reset():
    yield
    tracing.disable()
    tracing.drain()
    profile.disable()


def _run(tmp_path, *extra):
    argv = ["--designs", "saa2vga", "--bindings", "fifo",
            "--capacities", "16", "32", "--frames", "8x4",
            "--store", str(tmp_path / "store"), *extra]
    return explore_main(argv)


def test_trace_flag_writes_validating_trace(tmp_path, capsys):
    trace = tmp_path / "sweep.ndjson"
    assert _run(tmp_path, "--trace", str(trace)) == 0
    out = capsys.readouterr().out
    assert f"written to {trace}" in out

    records = export.read_trace(trace)
    assert export.validate_chrome(export.to_chrome(records)) == []
    names = {r["name"] for r in records}
    assert "explore.sweep" in names
    assert "explore.point" in names or "build" in names

    # acceptance: >= 95% of sweep wall time lands in named child phases
    root, fraction = export.attribution(records)
    assert root["name"] == "explore.sweep"
    assert fraction >= 0.95, f"only {fraction:.1%} attributed"

    # the CLI turned tracing back off after the run
    assert not tracing._STATE.active
    assert tracing.records() == []


def test_trace_flag_chrome_extension_writes_chrome_format(tmp_path):
    trace = tmp_path / "sweep.json"
    assert _run(tmp_path, "--trace", str(trace)) == 0
    loaded = export.read_trace(trace)
    # spans/instants plus the ph "M" trace.meta truncation header
    assert loaded and all(r["ph"] in ("X", "i", "M") for r in loaded)
    assert any(r["ph"] in ("X", "i") for r in loaded)


def test_profile_flag_prints_report(tmp_path, capsys):
    assert _run(tmp_path, "--profile") == 0
    out = capsys.readouterr().out
    assert "settle profile" in out
    assert "compiled" in out
    assert profile.active() is None  # lifecycle: disabled after the run


def test_without_flags_no_telemetry_artifacts(tmp_path, capsys):
    assert _run(tmp_path) == 0
    out = capsys.readouterr().out
    assert "settle profile" not in out
    assert "trace:" not in out
    assert tracing.records() == []
