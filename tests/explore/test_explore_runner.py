"""Tests for the batched design-space runner: grid expansion, memoization,
strategy selection and deterministic reporting."""

import pytest

from repro.explore import (
    AUTO,
    DesignPoint,
    ExplorationRunner,
    best_by,
    comparison_report,
    coverage_summary,
    expand_grid,
    is_valid_point,
    resolve_strategy,
    results_table,
)
from repro.rtl import COMPILED, EVENT, FIXPOINT

SMALL_GRID = dict(designs=("saa2vga",), pixel_formats=("gray8",),
                  frame_sizes=((8, 4),), capacities=(8, 16))


# -- grid expansion -------------------------------------------------------------


def test_expand_grid_cartesian_product_and_order():
    points = expand_grid(designs=("saa2vga",), pixel_formats=("gray8", "rgb24"),
                         frame_sizes=((8, 4), (12, 6)), capacities=(8, 16))
    # 2 bindings x 2 formats x 2 sizes x 2 capacities.
    assert len(points) == 16
    assert points == expand_grid(
        designs=("saa2vga",), pixel_formats=("gray8", "rgb24"),
        frame_sizes=((8, 4), (12, 6)), capacities=(8, 16)), \
        "expansion must be deterministic"
    # Nesting order: binding varies slowest among the non-design axes.
    assert [p.binding for p in points[:8]] == ["fifo"] * 8
    assert [p.binding for p in points[8:]] == ["sram"] * 8


def test_expand_grid_fills_in_supported_bindings():
    points = expand_grid(designs=("saa2vga", "blur"), frame_sizes=((8, 4),),
                         capacities=(8,))
    bindings = {(p.design, p.binding) for p in points}
    assert bindings == {("saa2vga", "fifo"), ("saa2vga", "sram"),
                        ("blur", "linebuffer")}


def test_expand_grid_drops_invalid_combinations():
    # blur never supports rgb24 pixels or the fifo binding.
    points = expand_grid(designs=("blur",), bindings=("fifo", "linebuffer"),
                         pixel_formats=("gray8", "rgb24"),
                         frame_sizes=((8, 4),), capacities=(8,))
    assert len(points) == 1
    assert points[0].binding == "linebuffer"
    assert points[0].pixel_format == "gray8"
    # A frame too small for the 3x3 window is dropped too.
    assert expand_grid(designs=("blur",), frame_sizes=((2, 2),),
                       capacities=(8,)) == []


def test_is_valid_point_reasons():
    ok, reason = is_valid_point(DesignPoint("saa2vga", "fifo", "gray8", 8, 4, 8))
    assert ok and reason is None
    for point, fragment in [
        (DesignPoint("nosuch", "fifo", "gray8", 8, 4, 8), "unknown design"),
        (DesignPoint("saa2vga", "linebuffer", "gray8", 8, 4, 8), "binding"),
        (DesignPoint("blur", "linebuffer", "rgb24", 8, 4, 8), "pixel"),
        (DesignPoint("saa2vga", "fifo", "gray8", 8, 4, 1), "capacity"),
    ]:
        ok, reason = is_valid_point(point)
        assert not ok and fragment in reason


def test_design_hash_is_stable_and_distinct():
    a = DesignPoint("saa2vga", "fifo", "gray8", 8, 4, 8)
    b = DesignPoint("saa2vga", "fifo", "gray8", 8, 4, 8)
    c = DesignPoint("saa2vga", "sram", "gray8", 8, 4, 8)
    assert a.design_hash() == b.design_hash()
    assert a.design_hash() != c.design_hash()


# -- runner ---------------------------------------------------------------------


def test_runner_simulates_and_verifies_each_point():
    points = expand_grid(**SMALL_GRID)
    runner = ExplorationRunner()
    results = runner.run(points)
    assert len(results) == len(points)
    for result in results:
        assert result.verified
        assert result.cycles > 0
        assert result.outputs == 8 * 4
        assert result.luts > 0


def test_runner_memoizes_repeated_points():
    points = expand_grid(**SMALL_GRID)
    runner = ExplorationRunner()
    first = runner.run(points)
    assert runner.evaluations == len(points)
    assert runner.cache_hits == 0

    # Same grid again: all hits, same objects, no new simulations.
    second = runner.run(points)
    assert runner.evaluations == len(points)
    assert runner.cache_hits == len(points)
    assert [id(res) for res in second] == [id(res) for res in first]

    # Duplicates inside one call also hit the memo (after one evaluation).
    runner2 = ExplorationRunner()
    doubled = runner2.run(points + points)
    assert runner2.evaluations == len(points)
    assert runner2.cache_hits == len(points)
    assert doubled[:len(points)] == doubled[len(points):]


def test_runner_results_keep_input_order():
    points = expand_grid(**SMALL_GRID)
    runner = ExplorationRunner()
    reversed_results = runner.run(list(reversed(points)))
    assert [res.point for res in reversed_results] == list(reversed(points))


# -- reporting ------------------------------------------------------------------


def test_report_ordering_is_deterministic():
    points = expand_grid(**SMALL_GRID)
    runner = ExplorationRunner()
    forward = runner.run(points)
    backward = runner.run(list(reversed(points)))
    # Same rows, same order, regardless of evaluation/result order.
    assert results_table(forward) == results_table(backward)
    assert comparison_report(forward) == comparison_report(backward)
    report = comparison_report(forward)
    assert report.splitlines()[0] == "Design-space exploration."
    assert report.count("saa2vga") == len(points)


def test_best_by_selects_verified_extremes():
    points = expand_grid(designs=("saa2vga",), pixel_formats=("gray8",),
                         frame_sizes=((8, 4),), capacities=(8,))
    runner = ExplorationRunner()
    results = runner.run(points)
    fastest = best_by(results, lambda res: res.throughput, lowest=False)
    assert fastest.point.binding == "fifo", "FIFO binding is the fast one"
    cheapest = best_by(results, lambda res: res.luts + res.ffs)
    assert cheapest.verified


def test_best_by_rejects_empty():
    with pytest.raises(ValueError):
        best_by([], lambda res: 0)


def test_runner_rejects_bad_processes():
    with pytest.raises(ValueError):
        ExplorationRunner(processes=0)


# -- strategy selection ----------------------------------------------------------


def test_auto_strategy_resolves_to_fastest_backend():
    assert resolve_strategy(AUTO) == COMPILED
    assert resolve_strategy(EVENT) == EVENT
    assert resolve_strategy(FIXPOINT) == FIXPOINT
    with pytest.raises(ValueError):
        resolve_strategy("levelized")
    with pytest.raises(ValueError):
        ExplorationRunner(strategy="levelized")


def test_runner_default_strategy_is_auto_and_agrees_with_event():
    points = expand_grid(**SMALL_GRID)
    auto_results = ExplorationRunner().run(points)
    event_results = ExplorationRunner(strategy=EVENT).run(points)
    for auto_res, event_res in zip(auto_results, event_results):
        assert auto_res.verified and event_res.verified
        assert auto_res.cycles == event_res.cycles
        assert auto_res.throughput == event_res.throughput


def test_memo_keys_include_strategy():
    """Switching strategy on a live runner must re-simulate, not reuse the
    other strategy's cached results."""
    points = expand_grid(**SMALL_GRID)
    runner = ExplorationRunner(strategy=EVENT)
    event_results = runner.run(points)
    assert runner.evaluations == len(points)

    runner.strategy = COMPILED
    compiled_results = runner.run(points)
    assert runner.evaluations == 2 * len(points), \
        "compiled results must not be served from the event cache"
    assert runner.cache_hits == 0
    # Results agree (the strategies are equivalent), but are distinct objects
    # because each was simulated under its own strategy.
    for ev, cp in zip(event_results, compiled_results):
        assert ev is not cp
        assert ev.cycles == cp.cycles

    # Flipping back serves the original event results from the memo.
    runner.strategy = EVENT
    again = runner.run(points)
    assert runner.cache_hits == len(points)
    assert [id(res) for res in again] == [id(res) for res in event_results]


def test_memo_treats_auto_and_compiled_as_the_same_key():
    points = expand_grid(**SMALL_GRID)
    runner = ExplorationRunner(strategy=AUTO)
    runner.run(points)
    runner.strategy = COMPILED
    runner.run(points)
    assert runner.evaluations == len(points)
    assert runner.cache_hits == len(points)


# -- constrained-random verification in sweeps --------------------------------


def test_sweep_with_verify_reports_coverage():
    points = expand_grid(**SMALL_GRID)
    runner = ExplorationRunner(verify=True, verify_cycles=1200)
    results = runner.run(points)
    for res in results:
        assert res.coverage_pct is not None
        assert res.coverage_pct > 0
        assert res.coverage_violations == 0, \
            f"{res.point}: constrained-random session flagged violations"
        assert "cov%" in res.row()
        assert res.row()["cr_ok"] == "yes"
    report = comparison_report(results)
    assert "cov%" in report
    assert "functional coverage" in report


def test_verify_flag_partitions_the_memo():
    points = expand_grid(**SMALL_GRID)[:1]
    plain = ExplorationRunner()
    checked = ExplorationRunner(verify=True, verify_cycles=800)
    assert plain.run(points)[0].coverage_pct is None
    assert checked.run(points)[0].coverage_pct is not None
    # Same runner, same config: second run is served from the memo.
    checked.run(points)
    assert checked.evaluations == 1
    assert checked.cache_hits == 1
    # Different seed means a different memo key, hence a re-evaluation.
    reseeded = ExplorationRunner(verify=True, verify_cycles=800,
                                 verify_seed=5)
    reseeded.run(points)
    assert reseeded.evaluations == 1


def test_plain_sweep_rows_omit_coverage_columns():
    points = expand_grid(**SMALL_GRID)[:1]
    res = ExplorationRunner().run(points)[0]
    assert "cov%" not in res.row()
    assert "functional coverage: not collected" in coverage_summary([res])


# -- batched lane-packed sweeps ------------------------------------------------


from repro.explore.runner import evaluate_point  # noqa: E402
from repro.rtl import COMPILED_BATCHED  # noqa: E402

#: 16 points sharing one batched-program signature (only the frame shape —
#: pure stimulus — varies), so the whole grid packs into one lane batch.
BATCH_GRID = dict(
    designs=("saa2vga",), bindings=("fifo",), pixel_formats=("gray8",),
    frame_sizes=tuple((w, h) for w in (6, 8, 10, 12) for h in (4, 5, 6, 7)),
    capacities=(8,))


def test_batched_sweep_runs_one_loop_and_matches_scalar_reports():
    points = expand_grid(**BATCH_GRID)
    assert len(points) == 16
    scalar = ExplorationRunner(strategy=COMPILED).run(points)
    runner = ExplorationRunner(strategy=COMPILED_BATCHED)
    batched = runner.run(points)
    assert batched == scalar, \
        "batched sweep reports must be byte-identical to scalar compiled"
    assert runner.batch_runs == 1, \
        "16 compatible points at lanes=16 must share one simulation loop"
    assert runner.evaluations == 16


def test_batched_sweep_respects_lane_budget_and_signature_groups():
    # 8 compatible frame-shape variants x 2 capacities: two signature
    # groups; lanes=4 cuts each group of 8 into two loops -> 4 in total.
    points = expand_grid(
        designs=("saa2vga",), bindings=("fifo",), pixel_formats=("gray8",),
        frame_sizes=tuple((w, 4) for w in (5, 6, 7, 8, 9, 10, 11, 12)),
        capacities=(8, 16))
    assert len(points) == 16
    runner = ExplorationRunner(strategy=COMPILED_BATCHED, lanes=4)
    batched = runner.run(points)
    assert runner.batch_runs == 4
    assert batched == ExplorationRunner(strategy=COMPILED).run(points)


def test_memo_shares_cache_between_compiled_and_batched():
    """Regression (lane batching vs memoization): batched lanes are proven
    trace-identical to scalar compiled, so the two strategies share one
    memo key — toggling between them must serve cache hits, and the cached
    reports must be the identical objects either way."""
    points = expand_grid(**BATCH_GRID)
    runner = ExplorationRunner(strategy=COMPILED)
    scalar = runner.run(points)
    assert runner.evaluations == len(points)

    runner.strategy = COMPILED_BATCHED
    batched = runner.run(points)
    assert runner.evaluations == len(points), \
        "switching to compiled-batched must not re-simulate cached points"
    assert runner.cache_hits == len(points)
    assert runner.batch_runs == 0
    assert [id(res) for res in batched] == [id(res) for res in scalar]

    # And the other direction: batched-first, scalar served from cache.
    other = ExplorationRunner(strategy=COMPILED_BATCHED)
    first = other.run(points)
    other.strategy = COMPILED
    second = other.run(points)
    assert other.evaluations == len(points)
    assert other.cache_hits == len(points)
    assert [id(res) for res in second] == [id(res) for res in first]


def test_evaluate_point_accepts_batched_strategy():
    point = expand_grid(**BATCH_GRID)[0]
    assert evaluate_point(point, strategy=COMPILED_BATCHED) == \
        evaluate_point(point, strategy=COMPILED)


def test_batched_strategy_resolution_and_validation():
    assert resolve_strategy(COMPILED_BATCHED) == COMPILED_BATCHED
    ExplorationRunner(strategy=COMPILED_BATCHED)  # accepted eagerly
    with pytest.raises(ValueError):
        ExplorationRunner(lanes=0)


def test_batched_sweep_with_verify_matches_scalar_coverage():
    points = expand_grid(**BATCH_GRID)[:2]
    scalar = ExplorationRunner(strategy=COMPILED, verify=True,
                               verify_cycles=800).run(points)
    batched = ExplorationRunner(strategy=COMPILED_BATCHED, verify=True,
                                verify_cycles=800).run(points)
    assert batched == scalar
    for res in batched:
        assert res.coverage_pct is not None
