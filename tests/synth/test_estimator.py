"""Tests for the structural resource estimator (the synthesis substitute)."""

from repro.core import make_container, make_iterator
from repro.designs import Saa2VgaCustomFIFO, build_saa2vga_pattern
from repro.primitives import AsyncSRAM, SyncFIFO
from repro.rtl import Component
from repro.synth import (
    ResourceEstimator,
    Resources,
    XC2S300E,
    XSB300E,
    estimate_design,
)


class TestTargetModel:
    def test_device_capacities(self):
        assert XC2S300E.total_brams == 16
        assert XC2S300E.bram_bits == 4096
        assert XSB300E.device is XC2S300E
        assert XSB300E.external_capacity_bits() == 2 * 256 * 1024 * 16

    def test_bram_blocks_for(self):
        assert XC2S300E.bram_blocks_for(0) == 0
        assert XC2S300E.bram_blocks_for(1) == 1
        assert XC2S300E.bram_blocks_for(4096) == 1
        assert XC2S300E.bram_blocks_for(4097) == 2

    def test_fmax_decreases_with_depth_and_external_io(self):
        fast = XC2S300E.fmax_mhz(3, uses_external_memory=False)
        deep = XC2S300E.fmax_mhz(8, uses_external_memory=False)
        external = XC2S300E.fmax_mhz(3, uses_external_memory=True)
        assert deep < fast
        assert external < fast
        assert 80 <= fast <= 110  # around the paper's 98 MHz


class TestResources:
    def test_addition(self):
        total = Resources(ffs=1, luts=2, brams=3) + Resources(ffs=10, luts=20,
                                                              brams=30)
        assert (total.ffs, total.luts, total.brams) == (11, 22, 33)

    def test_total_luts_includes_distributed_ram(self):
        assert Resources(luts=10, dist_ram_luts=5).total_luts == 15

    def test_as_dict(self):
        assert set(Resources().as_dict()) == {"ffs", "luts", "brams",
                                              "external_bits"}


class TestEstimationRules:
    def test_register_bits_become_flip_flops(self):
        comp = Component("c")
        comp.state(8)
        comp.state(3)
        report = estimate_design(comp)
        assert report.total.ffs == 11

    def test_external_components_cost_nothing_on_chip(self):
        sram = AsyncSRAM("sram", depth=1024, width=8)
        report = estimate_design(sram)
        assert report.total.ffs == 0
        assert report.total.brams == 0
        assert report.total.total_luts == 0
        assert report.total.external_bits >= 1024 * 8
        assert report.uses_external_memory

    def test_large_memories_map_to_block_ram(self):
        fifo = SyncFIFO("fifo", depth=512, width=8)  # 4096 bits
        report = estimate_design(fifo)
        assert report.total.brams == 1
        assert report.total.ffs > 0

    def test_small_memories_map_to_distributed_ram(self):
        fifo = SyncFIFO("fifo", depth=16, width=8)  # 128 bits < threshold
        report = estimate_design(fifo)
        assert report.total.brams == 0
        assert report.total.total_luts > report.total.luts - 1  # dist RAM charged

    def test_transparent_wrappers_are_dissolved(self):
        rb = make_container("read_buffer", "fifo", "rb", width=8, capacity=512)
        iterator = make_iterator(rb, "forward", readable=True)
        estimator = ResourceEstimator()
        container_own = estimator.estimate_component(rb)
        iterator_own = estimator.estimate_component(iterator)
        assert container_own.resources.ffs == 0
        assert container_own.resources.luts == 0
        assert iterator_own.resources.ffs == 0
        assert iterator_own.resources.luts == 0

    def test_dissolution_can_be_disabled_for_the_ablation(self):
        rb = make_container("read_buffer", "fifo", "rb", width=8, capacity=512)
        with_dissolution = ResourceEstimator(dissolve_wrappers=True).estimate(rb)
        without = ResourceEstimator(dissolve_wrappers=False).estimate(rb)
        assert without.total.total_luts > with_dissolution.total.total_luts
        assert without.total.ffs >= with_dissolution.total.ffs

    def test_logic_cost_hint_is_charged(self):
        comp = Component("datapath")
        comp.logic_cost_luts = 50
        report = estimate_design(comp)
        assert report.total.total_luts >= 50

    def test_report_row_and_breakdown(self):
        design = build_saa2vga_pattern("fifo", capacity=512)
        report = estimate_design(design)
        row = report.row()
        assert set(row) == {"design", "FFs", "LUTs", "blockRAM", "clk_MHz"}
        assert row["blockRAM"] == 2  # one block RAM per 512x8 FIFO
        breakdown = report.breakdown()
        assert breakdown  # non-empty, sorted by contribution
        assert breakdown[0]["LUTs"] + breakdown[0]["FFs"] >= \
            breakdown[-1]["LUTs"] + breakdown[-1]["FFs"]
        assert report.fits_device

    def test_sram_design_uses_no_block_ram_and_lower_clock(self):
        fifo_report = estimate_design(build_saa2vga_pattern("fifo", capacity=512))
        sram_report = estimate_design(build_saa2vga_pattern("sram", capacity=512))
        assert sram_report.total.brams == 0
        assert fifo_report.total.brams == 2
        assert sram_report.fmax_mhz < fifo_report.fmax_mhz
        assert sram_report.uses_external_memory

    def test_pattern_versus_custom_fifo_near_equal(self):
        pattern = estimate_design(build_saa2vga_pattern("fifo", capacity=512))
        custom = estimate_design(Saa2VgaCustomFIFO(capacity=512))
        assert pattern.total.brams == custom.total.brams
        assert abs(pattern.total.ffs - custom.total.ffs) <= 4
        assert abs(pattern.total.total_luts - custom.total.total_luts) <= 8
        assert pattern.fmax_mhz == custom.fmax_mhz
