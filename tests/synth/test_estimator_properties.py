"""Property-style tests of the resource estimator: monotonicity and consistency.

The estimator substitutes for a synthesis tool, so its *relative* behaviour
must be trustworthy: more storage can never cost less, external storage never
consumes on-chip memory, dissolution never increases cost, and reports are
deterministic for identical designs.
"""

from hypothesis import given, settings, strategies as st

from repro.core import make_container
from repro.designs import build_saa2vga_pattern
from repro.primitives import SyncFIFO
from repro.rtl import Component
from repro.synth import ResourceEstimator, estimate_design


@settings(max_examples=20, deadline=None)
@given(depth_small=st.sampled_from([4, 8, 16, 32]),
       factor=st.sampled_from([2, 4, 8]),
       width=st.sampled_from([4, 8, 16]))
def test_fifo_cost_is_monotonic_in_depth(depth_small, factor, width):
    small = estimate_design(SyncFIFO("small", depth=depth_small, width=width))
    large = estimate_design(SyncFIFO("large", depth=depth_small * factor,
                                     width=width))
    assert large.total.ffs >= small.total.ffs
    assert (large.total.brams, large.total.total_luts) >= \
        (small.total.brams, 0)
    # Total storage (on-chip bits, however mapped) grows strictly.
    small_bits = small.total.brams * 4096 + small.total.dist_ram_luts * 16
    large_bits = large.total.brams * 4096 + large.total.dist_ram_luts * 16
    assert large_bits > small_bits


@settings(max_examples=15, deadline=None)
@given(capacity=st.sampled_from([32, 64, 128, 256, 512]))
def test_sram_binding_never_uses_block_ram(capacity):
    container = make_container("read_buffer", "sram", "rb", width=8,
                               capacity=capacity)
    report = estimate_design(container)
    assert report.total.brams == 0
    assert report.total.external_bits >= capacity * 8
    assert report.uses_external_memory


@settings(max_examples=15, deadline=None)
@given(capacity=st.sampled_from([16, 64, 256]),
       width=st.sampled_from([4, 8, 16]))
def test_estimation_is_deterministic(capacity, width):
    def build():
        return make_container("queue", "fifo", "q", width=width, capacity=capacity)

    first = estimate_design(build()).total
    second = estimate_design(build()).total
    assert first.as_dict() == second.as_dict()


def test_dissolution_never_increases_any_metric():
    for binding in ("fifo", "sram"):
        design = build_saa2vga_pattern(binding, capacity=256)
        dissolved = ResourceEstimator(dissolve_wrappers=True).estimate(design)
        kept = ResourceEstimator(
            dissolve_wrappers=False).estimate(build_saa2vga_pattern(
                binding, capacity=256))
        assert dissolved.total.ffs <= kept.total.ffs
        assert dissolved.total.total_luts <= kept.total.total_luts
        assert dissolved.total.brams == kept.total.brams


def test_whole_design_equals_sum_of_component_entries():
    design = build_saa2vga_pattern("fifo", capacity=128)
    report = estimate_design(design)
    assert report.total.ffs == sum(e.resources.ffs for e in report.components)
    assert report.total.total_luts == sum(e.resources.total_luts
                                          for e in report.components)
    assert report.total.brams == sum(e.resources.brams for e in report.components)


def test_empty_component_costs_nothing():
    report = estimate_design(Component("empty"))
    assert report.total.as_dict() == {"ffs": 0, "luts": 0, "brams": 0,
                                      "external_bits": 0}
    assert not report.uses_external_memory


def test_estimates_fit_the_target_device():
    """Every evaluated design fits the XC2S300E, as it must have in the paper."""
    for binding in ("fifo", "sram"):
        report = estimate_design(build_saa2vga_pattern(binding, capacity=512))
        assert report.fits_device
