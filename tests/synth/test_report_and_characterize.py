"""Tests for report formatting (Table 3 style) and the design-space characterisation."""

import pytest

from repro.designs import Saa2VgaCustomFIFO, Saa2VgaCustomSRAM, build_saa2vga_pattern
from repro.synth import (
    DesignComparison,
    characterize_buffer_binding,
    characterize_design_space,
    estimate_design,
    estimate_power_mw,
    format_table,
    measure_stream_cycles_per_element,
    overhead_summary,
    pareto_front,
    table3,
)


def comparison(label, binding, capacity=128):
    pattern = estimate_design(build_saa2vga_pattern(binding, capacity=capacity))
    custom_cls = Saa2VgaCustomFIFO if binding == "fifo" else Saa2VgaCustomSRAM
    custom = estimate_design(custom_cls(capacity=capacity))
    return DesignComparison(label, pattern, custom)


class TestReport:
    def test_cells_use_pattern_slash_custom_format(self):
        cells = comparison("saa2vga 1", "fifo").cells()
        assert set(cells) == {"Design", "FFs", "LUTs", "blockRAM", "clk MHz"}
        assert "/" in cells["FFs"]
        assert "/" in cells["clk MHz"]

    def test_overhead_close_to_one_for_fifo_design(self):
        overhead = comparison("saa2vga 1", "fifo").overhead()
        for key in ("FFs", "LUTs", "blockRAM"):
            assert overhead[key] == pytest.approx(1.0, rel=0.05)
        assert overhead["clk_MHz"] == pytest.approx(1.0, rel=0.02)

    def test_table3_renders_all_rows(self):
        comparisons = [comparison("saa2vga 1", "fifo"),
                       comparison("saa2vga 2", "sram")]
        text = table3(comparisons)
        assert "Table 3" in text
        assert "saa2vga 1" in text and "saa2vga 2" in text
        assert "blockRAM" in text

    def test_overhead_summary_reports_worst_case(self):
        comparisons = [comparison("saa2vga 1", "fifo"),
                       comparison("saa2vga 2", "sram")]
        worst = overhead_summary(comparisons)
        assert worst["blockRAM"] == 1.0
        assert worst["FFs"] < 1.2
        assert worst["LUTs"] < 1.25

    def test_format_table_alignment_and_empty(self):
        rows = [{"a": 1, "bb": "xy"}, {"a": 22, "bb": "z"}]
        text = format_table(rows, title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert len(lines) == 5  # title, header, separator, two rows
        assert format_table([], title="T").startswith("T")


class TestCharacterization:
    def test_fifo_point_is_fast_and_uses_block_ram(self):
        point = characterize_buffer_binding("fifo", capacity=512, elements=32)
        assert point.cycles_per_element < 2.0
        assert point.area.total.brams >= 1
        assert point.power_mw > 0

    def test_sram_point_is_small_but_slow(self):
        fifo = characterize_buffer_binding("fifo", capacity=512, elements=32)
        sram = characterize_buffer_binding("sram", capacity=512, elements=32)
        assert sram.area.total.brams == 0
        assert sram.cycles_per_element > fifo.cycles_per_element * 2
        row = sram.row()
        assert row["binding"] == "sram"
        assert row["cycles/elem"] > 0

    def test_measure_stream_cycles_per_element_fifo(self):
        assert measure_stream_cycles_per_element("fifo", capacity=64,
                                                 elements=32) < 2.0

    def test_design_space_sweep_and_pareto(self):
        points = characterize_design_space(capacities=(32, 512),
                                           bindings=("fifo", "sram"),
                                           elements=24)
        assert len(points) == 4
        front = pareto_front(points)
        assert front
        assert len(front) <= len(points)
        bindings_on_front = {point.binding for point in front}
        # Both ends of the trade-off (fast-and-big vs small-and-slow) survive.
        assert "fifo" in bindings_on_front
        assert "sram" in bindings_on_front

    def test_power_proxy_scales_with_toggle_rate(self):
        report = estimate_design(build_saa2vga_pattern("fifo", capacity=128))
        assert estimate_power_mw(report, toggle_rate=0.5) == pytest.approx(
            2 * estimate_power_mw(report, toggle_rate=0.25))
