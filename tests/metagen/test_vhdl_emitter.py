"""Tests for the VHDL AST and emitter."""

from repro.metagen import Architecture, Entity, Generic, Port, VHDLFile, check_balanced
from repro.metagen.vhdl import IN, OUT, std_logic, std_logic_vector


def test_type_helpers():
    assert std_logic() == "std_logic"
    assert std_logic_vector(8) == "std_logic_vector(7 downto 0)"
    assert std_logic_vector(1) == "std_logic_vector(0 downto 0)"


def test_entity_emission_groups_and_semicolons():
    entity = Entity(name="widget")
    entity.add_group("methods", [Port("m_go", IN, std_logic())])
    entity.add_group("params", [Port("data", OUT, std_logic_vector(8)),
                                Port("done", OUT, std_logic())])
    text = entity.emit()
    assert "entity widget is" in text
    assert "-- methods" in text
    assert "-- params" in text
    assert "m_go : in std_logic;" in text
    # The final port has no trailing semicolon.
    assert "done : out std_logic\n" in text
    assert text.rstrip().endswith("end widget;")
    assert entity.port_names() == ["m_go", "data", "done"]


def test_entity_with_generics():
    entity = Entity(name="gen", generics=[Generic("WIDTH", "natural", "8")])
    text = entity.emit()
    assert "generic (" in text
    assert "WIDTH : natural := 8" in text


def test_architecture_declarations_and_statements():
    entity = Entity(name="w")
    arch = Architecture(name="rtl", entity=entity)
    arch.declare_signal("count", "unsigned(3 downto 0)", "(others => '0')")
    arch.declare_constant("DEPTH", "natural", "16")
    arch.add("count <= count;")
    text = arch.emit()
    assert text.startswith("architecture rtl of w is")
    assert "signal count" in text
    assert "constant DEPTH" in text
    assert text.rstrip().endswith("end rtl;")


def test_vhdl_file_contains_libraries_and_filename():
    entity = Entity(name="w")
    arch = Architecture(name="rtl", entity=entity)
    unit = VHDLFile(entity=entity, architecture=arch, header_comment="hello\nworld")
    text = unit.emit()
    assert "library ieee;" in text
    assert "-- hello" in text and "-- world" in text
    assert unit.filename() == "w.vhd"
    assert unit.name == "w"


def test_check_balanced_accepts_good_and_rejects_truncated():
    entity = Entity(name="w")
    arch = Architecture(name="rtl", entity=entity)
    arch.add("\n".join([
        "p: process(clk)",
        "begin",
        "  if rising_edge(clk) then",
        "    q <= d;",
        "  end if;",
        "end process;",
    ]))
    good = VHDLFile(entity=entity, architecture=arch).emit()
    assert check_balanced(good)
    truncated = good.replace("end if;", "")
    assert not check_balanced(truncated)
    assert not check_balanced("-- nothing here")
