"""Tests for the container/iterator metamodels and generation configuration."""

import pytest

from repro.metagen import (
    CONTAINER_METAMODELS,
    ITERATOR_METAMODELS,
    GenerationConfig,
)
from repro.metagen.metamodel import Operation, OperationParam


class TestContainerMetamodels:
    def test_every_table1_kind_has_a_metamodel(self):
        assert set(CONTAINER_METAMODELS) == {"read_buffer", "write_buffer", "queue",
                                             "stack", "vector", "assoc_array"}

    def test_metamodel_bindings_cover_the_registered_library(self):
        # Every binding the runtime library registers can also be generated.
        from repro.core import bindings_for
        for kind, metamodel in CONTAINER_METAMODELS.items():
            for binding in bindings_for(kind):
                if binding in ("registers", "cam", "bram", "lifo", "linebuffer3"):
                    # On-chip-only bindings may be absent from some metamodels,
                    # but where present they must be well-formed.
                    if binding not in metamodel.bindings:
                        continue
                assert binding in metamodel.bindings, (kind, binding)

    def test_operation_lookup(self):
        metamodel = CONTAINER_METAMODELS["read_buffer"]
        assert metamodel.operation_names() == ["empty", "size", "pop"]
        assert metamodel.get_operation("pop").has_done
        with pytest.raises(KeyError):
            metamodel.get_operation("teleport")

    def test_binding_lookup_error_lists_alternatives(self):
        metamodel = CONTAINER_METAMODELS["vector"]
        with pytest.raises(KeyError) as excinfo:
            metamodel.get_binding("flash")
        assert "bram" in str(excinfo.value)

    def test_select_operations_subset_and_validation(self):
        metamodel = CONTAINER_METAMODELS["queue"]
        config = GenerationConfig(name="q", used_operations=frozenset({"push"}))
        assert [op.name for op in metamodel.select_operations(config)] == ["push"]
        full = GenerationConfig(name="q")
        assert len(metamodel.select_operations(full)) == 4
        with pytest.raises(KeyError):
            metamodel.select_operations(
                GenerationConfig(name="q", used_operations=frozenset({"warp"})))

    def test_external_bindings_marked(self):
        assert CONTAINER_METAMODELS["read_buffer"].bindings["sram"].external
        assert not CONTAINER_METAMODELS["read_buffer"].bindings["fifo"].external


class TestIteratorMetamodels:
    def test_expected_families_present(self):
        assert {"read_buffer_forward", "write_buffer_forward", "vector_random",
                "read_buffer_window"} <= set(ITERATOR_METAMODELS)

    def test_random_iterator_metamodel_has_full_operation_set(self):
        random_it = ITERATOR_METAMODELS["vector_random"]
        assert set(random_it.operation_names()) == {"inc", "dec", "read", "write",
                                                    "index"}
        assert random_it.readable and random_it.writable

    def test_window_iterator_metamodel_reads_three_pixels(self):
        window = ITERATOR_METAMODELS["read_buffer_window"]
        read_op = [op for op in window.operations if op.name == "read"][0]
        assert [param.name for param in read_op.params] == ["col_top", "col_mid",
                                                            "col_bot"]

    def test_select_operations_respects_config(self):
        forward = ITERATOR_METAMODELS["read_buffer_forward"]
        config = GenerationConfig(name="it", used_operations=frozenset({"inc"}))
        assert [op.name for op in forward.select_operations(config)] == ["inc"]


class TestGenerationConfig:
    def test_defaults(self):
        config = GenerationConfig(name="x")
        assert config.effective_bus_width() == config.data_width == 8
        assert config.beats_per_element() == 1
        assert not config.shared_resource

    def test_bus_width_and_beats(self):
        config = GenerationConfig(name="x", data_width=32, bus_width=8)
        assert config.effective_bus_width() == 8
        assert config.beats_per_element() == 4

    def test_operation_and_param_dataclasses(self):
        param = OperationParam("data", "out")
        op = Operation("pop", params=(param,), description="take one")
        assert op.has_done
        assert op.params[0].width is None
        assert op.description == "take one"
