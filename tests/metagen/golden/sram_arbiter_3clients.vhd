-- Generated arbitration logic: 3 clients sharing one external SRAM (round-robin)
library ieee;
use ieee.std_logic_1164.all;
use ieee.numeric_std.all;

entity sram_arbiter is
  port (
    -- clock and reset
    clk : in std_logic;
    rst : in std_logic;
    -- client ports
    c0_addr : in std_logic_vector(9 downto 0);
    c0_wdata : in std_logic_vector(7 downto 0);
    c0_we : in std_logic;
    c0_req : in std_logic;
    c0_ack : out std_logic;
    c0_rdata : out std_logic_vector(7 downto 0);
    c1_addr : in std_logic_vector(9 downto 0);
    c1_wdata : in std_logic_vector(7 downto 0);
    c1_we : in std_logic;
    c1_req : in std_logic;
    c1_ack : out std_logic;
    c1_rdata : out std_logic_vector(7 downto 0);
    c2_addr : in std_logic_vector(9 downto 0);
    c2_wdata : in std_logic_vector(7 downto 0);
    c2_we : in std_logic;
    c2_req : in std_logic;
    c2_ack : out std_logic;
    c2_rdata : out std_logic_vector(7 downto 0);
    -- memory interface
    p_addr : out std_logic_vector(9 downto 0);
    p_data : in std_logic_vector(7 downto 0);
    p_wdata : out std_logic_vector(7 downto 0);
    p_we : out std_logic;
    req : out std_logic;
    ack : in std_logic
  );
end sram_arbiter;

architecture generated of sram_arbiter is
  signal grant : std_logic_vector(1 downto 0);
  signal grant_locked : std_logic;
begin
  with grant select p_addr <=
    c0_addr when "00",
    c1_addr when "01",
    c2_addr when "10",
    (others => '0') when others;
  -- round-robin pointer rotates past the last granted client
  rotate: process(clk)
  begin
    if rising_edge(clk) then
      if rst = '1' then
        grant <= (others => '0');
      elsif ack = '1' then
        grant <= std_logic_vector(unsigned(grant) + 1);
      end if;
    end if;
  end process;
  c0_ack <= ack when unsigned(grant) = 0 else '0';
  c0_rdata <= p_data;
  c1_ack <= ack when unsigned(grant) = 1 else '0';
  c1_rdata <= p_data;
  c2_ack <= ack when unsigned(grant) = 2 else '0';
  c2_rdata <= p_data;
end generated;
