-- width adaptation: 24-bit element over a 8-bit bus (3 beats per element)
signal beat_count : unsigned(1 downto 0);
signal shift_reg  : std_logic_vector(23 downto 0);
adapt: process(clk)
begin
  if rising_edge(clk) then
    if beat_accepted = '1' then
      shift_reg <= shift_reg(15 downto 0) & p_data;
      if beat_count = 2 then
        beat_count   <= (others => '0');
        element_done <= '1';
      else
        beat_count   <= beat_count + 1;
        element_done <= '0';
      end if;
    end if;
  end if;
end process;
