"""Golden-file tests for metagen VHDL emission.

The unit tests in ``test_vhdl_emitter.py`` / ``test_width_adapter.py``
check structural properties; these tests pin the *exact* emitted text of
the width-adaptation fragment and the generated arbiter, end to end.  Any
intentional change to the generators must update the golden files in
``tests/metagen/golden/`` — regenerate with::

    REPRO_REGEN_GOLDEN=1 PYTHONPATH=src python -m pytest \
        tests/metagen/test_golden_vhdl.py

and review the diff like any other code change.
"""

import os
import pathlib

import pytest

from repro.metagen import WidthAdaptationPlan, generate_arbiter_vhdl, check_balanced

GOLDEN_DIR = pathlib.Path(__file__).parent / "golden"

REGEN = os.environ.get("REPRO_REGEN_GOLDEN") == "1"


def check_golden(name: str, emitted: str) -> None:
    path = GOLDEN_DIR / name
    emitted = emitted.rstrip("\n") + "\n"
    if REGEN:
        path.write_text(emitted, encoding="utf-8")
        pytest.skip(f"regenerated {path.name}")
    assert path.exists(), f"golden file {path} missing (REPRO_REGEN_GOLDEN=1)"
    golden = path.read_text(encoding="utf-8")
    assert emitted == golden, (
        f"emitted VHDL for {name} differs from the golden file; if the "
        f"change is intentional, regenerate with REPRO_REGEN_GOLDEN=1")


def test_width_adaptation_fragment_24_over_8_matches_golden():
    plan = WidthAdaptationPlan(element_width=24, bus_width=8)
    assert plan.beats == 3
    check_golden("width_adapter_24_over_8.vhdl.frag", plan.vhdl_fragment())


def test_width_adaptation_fragment_no_adaptation_matches_golden():
    plan = WidthAdaptationPlan(element_width=16, bus_width=16)
    assert not plan.needs_adaptation
    check_golden("width_adapter_16_over_16.vhdl.frag", plan.vhdl_fragment())


def test_generated_arbiter_3_clients_matches_golden():
    unit = generate_arbiter_vhdl(3, addr_width=10, data_width=8)
    emitted = unit.emit()
    assert check_balanced(emitted)
    check_golden("sram_arbiter_3clients.vhd", emitted)


def test_golden_files_are_tracked():
    """The golden corpus itself must exist (a deleted file should fail the
    comparison tests loudly, not silently skip them)."""
    names = {path.name for path in GOLDEN_DIR.iterdir()}
    assert {"width_adapter_24_over_8.vhdl.frag",
            "width_adapter_16_over_16.vhdl.frag",
            "sram_arbiter_3clients.vhd"} <= names
