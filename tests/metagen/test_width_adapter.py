"""Tests for width adaptation: the plan, its VHDL fragment and the simulatable
down/up converters."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.metagen import WidthAdaptationPlan, WidthDownConverter, WidthUpConverter
from repro.rtl import Component, Simulator
from repro.testing import stream_feed_and_drain


class TestPlan:
    def test_beats_and_need(self):
        plan = WidthAdaptationPlan(24, 8)
        assert plan.beats == 3
        assert plan.needs_adaptation
        assert not WidthAdaptationPlan(8, 8).needs_adaptation

    def test_indivisible_rejected(self):
        with pytest.raises(ValueError):
            WidthAdaptationPlan(24, 7)

    def test_split_and_join(self):
        plan = WidthAdaptationPlan(24, 8)
        assert plan.split(0xABCDEF) == [0xAB, 0xCD, 0xEF]
        assert plan.join([0xAB, 0xCD, 0xEF]) == 0xABCDEF
        with pytest.raises(ValueError):
            plan.join([1, 2])

    def test_vhdl_fragment_mentions_beat_counter(self):
        plan = WidthAdaptationPlan(24, 8)
        fragment = plan.vhdl_fragment()
        assert "beat_count" in fragment
        assert "shift_reg" in fragment
        assert "no adaptation" in WidthAdaptationPlan(8, 8).vhdl_fragment()

    @given(value=st.integers(min_value=0, max_value=0xFFFFFF))
    def test_property_split_join_roundtrip(self, value):
        plan = WidthAdaptationPlan(24, 8)
        assert plan.join(plan.split(value)) == value


def build_down_up(element_width=24, bus_width=8):
    """wide -> down-converter -> up-converter -> wide, connected back to back."""
    top = Component("top")
    down = top.child(WidthDownConverter("down", element_width, bus_width))
    up = top.child(WidthUpConverter("up", element_width, bus_width))

    @top.comb
    def connect():
        up.narrow_in.data.next = down.narrow_out.data.value
        up.narrow_in.push.next = (down.narrow_out.valid.value
                                  and up.narrow_in.ready.value)
        down.narrow_out.pop.next = (down.narrow_out.valid.value
                                    and up.narrow_in.ready.value)

    return top, down, up, Simulator(top)


class TestConverters:
    def test_round_trip_preserves_wide_elements(self):
        top, down, up, sim = build_down_up()
        data = [0x123456, 0xABCDEF, 0x000001, 0xFFFFFF]
        received = stream_feed_and_drain(sim, down.wide_in, up.wide_out, data)
        assert received == data

    def test_down_converter_emits_msb_first(self):
        top = Component("top")
        down = top.child(WidthDownConverter("down", 24, 8))
        sim = Simulator(top)
        beats = stream_feed_and_drain(sim, down.wide_in, down.narrow_out,
                                      [0xA1B2C3], expected=3)
        assert beats == [0xA1, 0xB2, 0xC3]

    def test_up_converter_assembles_msb_first(self):
        top = Component("top")
        up = top.child(WidthUpConverter("up", 16, 8))
        sim = Simulator(top)
        words = stream_feed_and_drain(sim, up.narrow_in, up.wide_out,
                                      [0xDE, 0xAD, 0xBE, 0xEF], expected=2)
        assert words == [0xDEAD, 0xBEEF]

    def test_converter_backpressure(self):
        top = Component("top")
        down = top.child(WidthDownConverter("down", 24, 8))
        sim = Simulator(top)
        # Push one element and never drain: the converter must stop accepting.
        down.wide_in.data.force(0x111111)
        down.wide_in.push.force(1)
        sim.step()
        down.wide_in.push.force(0)
        sim.step(5)
        assert down.wide_in.ready.value == 0
        assert down.narrow_out.valid.value == 1

    @settings(max_examples=10, deadline=None)
    @given(data=st.lists(st.integers(min_value=0, max_value=0xFFFFFF),
                         min_size=1, max_size=12))
    def test_property_round_trip_for_any_pixel_sequence(self, data):
        _top, down, up, sim = build_down_up()
        assert stream_feed_and_drain(sim, down.wide_in, up.wide_out, data) == data
