"""Tests for the generated shared-SRAM arbitration component."""

import pytest

from repro.metagen import SharedSRAM
from repro.rtl import Component, SimulationError, Simulator


def build(num_clients=2, depth=32, width=8, latency=1):
    top = Component("top")
    shared = top.child(SharedSRAM("shared", num_clients=num_clients, depth=depth,
                                  width=width, latency=latency))
    return shared, Simulator(top)


def client_access(sim, client, addr, write=False, value=0, max_cycles=200):
    client.addr.force(addr)
    client.we.force(1 if write else 0)
    client.wdata.force(value)
    client.req.force(1)
    for _ in range(max_cycles):
        sim.step()
        if client.ack.value:
            data = client.rdata.value
            client.req.force(0)
            sim.step(2)
            return data
    raise SimulationError("client never acknowledged")


def test_single_client_read_write():
    shared, sim = build(num_clients=1)
    client_access(sim, shared.clients[0], 3, write=True, value=0x42)
    assert shared.sram.read_word(3) == 0x42
    assert client_access(sim, shared.clients[0], 3) == 0x42


def test_two_clients_share_the_memory_without_corruption():
    shared, sim = build(num_clients=2)
    c0, c1 = shared.clients
    client_access(sim, c0, 0, write=True, value=0xAA)
    client_access(sim, c1, 1, write=True, value=0xBB)
    assert client_access(sim, c0, 1) == 0xBB
    assert client_access(sim, c1, 0) == 0xAA


def test_only_one_grant_at_a_time():
    shared, sim = build(num_clients=3)
    for client in shared.clients:
        client.addr.force(0)
        client.req.force(1)
    sim.settle()
    granted = shared.granted_client()
    assert granted in (0, 1, 2)
    acks = [client.ack.value for client in shared.clients]
    assert sum(acks) <= 1
    # Only the granted client ever sees its ack rise.
    sim.step(5)
    for index, client in enumerate(shared.clients):
        if client.ack.value:
            assert index == shared.granted_client()
    for client in shared.clients:
        client.req.force(0)


def test_contending_clients_both_complete():
    shared, sim = build(num_clients=2, latency=2)
    c0, c1 = shared.clients
    # Preload and have both clients read different addresses "simultaneously":
    # issue c0 first, then c1 while c0 is still in flight.
    shared.sram.write_word(4, 0x44)
    shared.sram.write_word(5, 0x55)
    c0.addr.force(4)
    c0.req.force(1)
    c1.addr.force(5)
    c1.req.force(1)
    results = {}
    for _ in range(200):
        sim.step()
        if c0.req.value and c0.ack.value:
            results[0] = c0.rdata.value
            c0.req.force(0)
        if c1.req.value and c1.ack.value:
            results[1] = c1.rdata.value
            c1.req.force(0)
        if len(results) == 2:
            break
    assert results == {0: 0x44, 1: 0x55}


def test_invalid_client_count():
    with pytest.raises(ValueError):
        SharedSRAM("bad", num_clients=0, depth=16, width=8)
