"""Tests for communication-protocol selection."""

import pytest

from repro.metagen import (
    PROTOCOLS,
    REQ_ACK,
    STROBE,
    STROBE_DONE,
    VALID_READY,
    protocol_for_binding,
    select_protocol,
)


def test_catalog_contents():
    assert set(PROTOCOLS) == {"strobe", "valid_ready", "req_ack", "strobe_done"}
    assert PROTOCOLS["req_ack"] is REQ_ACK


def test_properties_of_each_protocol():
    assert not STROBE.supports_backpressure
    assert VALID_READY.supports_backpressure
    assert not VALID_READY.supports_variable_latency
    assert REQ_ACK.supports_variable_latency
    assert STROBE_DONE.supports_variable_latency
    assert REQ_ACK.min_cycles_per_transfer > VALID_READY.min_cycles_per_transfer


def test_selection_prefers_cheapest_compatible():
    # Fixed latency + backpressure: the streaming handshake wins.
    assert select_protocol(fixed_latency=True, needs_backpressure=True) is VALID_READY
    # No backpressure needed and fixed latency: the bare strobe suffices.
    assert select_protocol(fixed_latency=True, needs_backpressure=False) is STROBE
    # Variable latency forces a completion signal.
    chosen = select_protocol(fixed_latency=False, needs_backpressure=True)
    assert chosen.supports_variable_latency


def test_override_is_validated():
    assert select_protocol(True, True, override="req_ack") is REQ_ACK
    with pytest.raises(ValueError):
        select_protocol(False, True, override="valid_ready")
    with pytest.raises(ValueError):
        select_protocol(True, True, override="strobe")
    with pytest.raises(KeyError):
        select_protocol(True, True, override="smoke_signals")


def test_binding_mapping():
    assert protocol_for_binding("fifo").name == "valid_ready"
    assert protocol_for_binding("lifo").name == "valid_ready"
    assert protocol_for_binding("bram").name == "valid_ready"
    assert protocol_for_binding("sram").supports_variable_latency
    assert protocol_for_binding("sram", override="req_ack") is REQ_ACK
