"""Tests for the metamodel-driven VHDL code generator (Figures 4 and 5,
operation pruning, width adaptation, protocol selection, arbitration)."""

import pytest

from repro.metagen import (
    CONTAINER_METAMODELS,
    CodeGenerator,
    GenerationConfig,
    check_balanced,
    figure4_rbuffer_fifo,
    figure5_rbuffer_sram,
    generate_arbiter_vhdl,
    protocol_for_binding,
)


class TestFigureEntities:
    def test_figure4_ports_match_the_paper(self):
        generated = figure4_rbuffer_fifo()
        names = generated.vhdl.entity.port_names()
        # Functional interface of Figure 4.
        for expected in ("m_empty", "m_size", "m_pop", "data", "done"):
            assert expected in names
        # Implementation interface of Figure 4.
        for expected in ("p_empty", "p_read", "p_data"):
            assert expected in names
        assert generated.name == "rbuffer_fifo"
        text = generated.emit()
        assert "entity rbuffer_fifo is" in text
        assert "std_logic_vector(7 downto 0)" in text
        assert check_balanced(text)

    def test_figure5_differs_only_in_the_implementation_interface(self):
        fifo = figure4_rbuffer_fifo()
        sram = figure5_rbuffer_sram()
        names = sram.vhdl.entity.port_names()
        for expected in ("p_addr", "p_data", "req", "ack"):
            assert expected in names
        assert "p_read" not in names
        # The functional interface is shared between the two bindings.
        functional = {"m_empty", "m_size", "m_pop", "data", "done"}
        assert functional <= set(names)
        assert functional <= set(fifo.vhdl.entity.port_names())
        assert check_balanced(sram.emit())

    def test_figure5_address_width_is_sixteen_bits(self):
        sram = figure5_rbuffer_sram()
        text = sram.emit()
        assert "p_addr : out std_logic_vector(15 downto 0)" in text


class TestPruning:
    def test_unused_operations_are_omitted(self):
        generator = CodeGenerator()
        config = GenerationConfig(name="rb_minimal", binding="fifo",
                                  used_operations=frozenset({"pop"}))
        generated = generator.generate_container("read_buffer", config)
        names = generated.vhdl.entity.port_names()
        assert "m_pop" in names
        assert "m_empty" not in names
        assert "m_size" not in names
        assert generated.operations == ["pop"]

    def test_unknown_operation_rejected(self):
        generator = CodeGenerator()
        config = GenerationConfig(name="bad", binding="fifo",
                                  used_operations=frozenset({"teleport"}))
        with pytest.raises(KeyError):
            generator.generate_container("read_buffer", config)

    def test_full_operation_set_by_default(self):
        generator = CodeGenerator()
        generated = generator.generate_container(
            "queue", GenerationConfig(name="q_full", binding="fifo"))
        assert set(generated.operations) == {"empty", "full", "pop", "push"}


class TestWidthAdaptation:
    def test_beats_per_element(self):
        config = GenerationConfig(name="x", data_width=24, bus_width=8)
        assert config.beats_per_element() == 3
        assert GenerationConfig(name="y", data_width=8).beats_per_element() == 1

    def test_indivisible_width_rejected(self):
        with pytest.raises(ValueError):
            GenerationConfig(name="x", data_width=24, bus_width=7).beats_per_element()

    def test_generated_container_mentions_adaptation(self):
        generator = CodeGenerator()
        config = GenerationConfig(name="rb24", data_width=24, bus_width=8,
                                  binding="sram",
                                  used_operations=frozenset({"pop", "empty"}))
        generated = generator.generate_container("read_buffer", config)
        assert generated.width_plan.beats == 3
        text = generated.emit()
        assert "width adaptation" in text
        assert "beat_count" in text

    def test_no_adaptation_logic_when_widths_match(self):
        generator = CodeGenerator()
        generated = generator.generate_container(
            "read_buffer", GenerationConfig(name="rb8", data_width=8,
                                            binding="fifo"))
        assert "beat_count" not in generated.emit()


class TestIteratorsAndSystem:
    def test_iterator_generation(self):
        generator = CodeGenerator()
        generated = generator.generate_iterator(
            "read_buffer_forward", GenerationConfig(name="rbuffer_it",
                                                    binding="fifo"))
        names = generated.vhdl.entity.port_names()
        assert "m_inc" in names and "m_read" in names
        assert "c_pop" in names and "c_done" in names
        assert check_balanced(generated.emit())

    def test_design_library_generation(self):
        generator = CodeGenerator()
        units = generator.generate_design_library("saa2vga", binding="sram",
                                                   depth=1024)
        names = {unit.name for unit in units}
        assert names == {"saa2vga_rbuffer_sram", "saa2vga_wbuffer_sram",
                         "saa2vga_rbuffer_it", "saa2vga_wbuffer_it"}
        for unit in units:
            assert check_balanced(unit.emit())

    def test_every_metamodel_binding_generates_valid_vhdl(self):
        generator = CodeGenerator()
        for kind, metamodel in CONTAINER_METAMODELS.items():
            for binding in metamodel.bindings:
                config = GenerationConfig(name=f"{kind}_{binding}", binding=binding)
                generated = generator.generate_container(kind, config)
                assert check_balanced(generated.emit()), (kind, binding)


class TestArbitrationAndProtocol:
    def test_shared_external_resource_generates_an_arbiter(self):
        generator = CodeGenerator()
        config = GenerationConfig(name="rb_shared", binding="sram",
                                  shared_resource=True, sharers=2)
        generated = generator.generate_container("read_buffer", config)
        assert len(generated.extra_files) == 1
        arbiter_text = generated.extra_files[0].emit()
        assert "c0_req" in arbiter_text and "c1_req" in arbiter_text
        assert check_balanced(arbiter_text)

    def test_unshared_resource_generates_no_arbiter(self):
        generator = CodeGenerator()
        generated = generator.generate_container(
            "read_buffer", GenerationConfig(name="rb", binding="sram"))
        assert generated.extra_files == []

    def test_generate_arbiter_vhdl_standalone(self):
        unit = generate_arbiter_vhdl(3, addr_width=10, data_width=8)
        text = unit.emit()
        assert "c2_addr" in text
        assert check_balanced(text)

    def test_protocol_selection_per_binding(self):
        assert protocol_for_binding("fifo").name == "valid_ready"
        assert protocol_for_binding("sram").supports_variable_latency
        generated = figure5_rbuffer_sram()
        assert generated.protocol.supports_variable_latency
