"""Unit tests for the component hierarchy and memories."""

import pytest

from repro.rtl import Component, ElaborationError, Memory


def test_child_attachment_and_paths():
    top = Component("top")
    mid = top.child(Component("mid"))
    leaf = mid.child(Component("leaf"))
    assert leaf.path() == "top.mid.leaf"
    assert top.get_child("mid") is mid
    assert top.find("mid.leaf") is leaf
    assert [c.name for c in top.walk()] == ["top", "mid", "leaf"]
    assert mid.parent is top


def test_duplicate_child_name_rejected():
    top = Component("top")
    top.child(Component("a"))
    with pytest.raises(ElaborationError):
        top.child(Component("a"))


def test_reparenting_rejected():
    a, b = Component("a"), Component("b")
    shared = Component("shared")
    a.child(shared)
    with pytest.raises(ElaborationError):
        b.child(shared)


def test_missing_child_lookup():
    with pytest.raises(ElaborationError):
        Component("top").get_child("ghost")


def test_signal_and_state_declaration():
    comp = Component("c")
    w = comp.signal(8, name="w")
    r = comp.state(4, init=3, name="r")
    assert w.kind == "wire"
    assert r.kind == "reg"
    assert r.value == 3
    assert comp.state_bits() == 4
    assert set(comp.signals) == {w, r}


def test_all_signals_covers_descendants():
    top = Component("top")
    top.signal(1)
    child = top.child(Component("child"))
    child.state(8)
    assert len(top.all_signals()) == 2
    assert top.state_bits() == 0  # own only
    assert sum(c.state_bits() for c in top.walk()) == 8


def test_adopt_signal():
    from repro.rtl import Signal
    comp = Component("c")
    external = Signal(8, name="ext")
    comp.adopt_signal(external)
    assert external in comp.signals


def test_process_registration():
    comp = Component("c")

    @comp.comb
    def comb_proc():
        pass

    @comp.seq
    def seq_proc():
        pass

    assert comb_proc in comp.comb_procs
    assert seq_proc in comp.seq_procs
    assert comp.all_comb_procs() == [comb_proc]
    assert comp.all_seq_procs() == [seq_proc]


def test_reset_state_restores_signals_and_memories():
    comp = Component("c")
    reg = comp.state(8, init=7)
    mem = comp.memory(4, 8, init=[1, 2, 3, 4])
    reg.force(99)
    mem[0] = 42
    comp.reset_state()
    assert reg.value == 7
    assert mem[0] == 1


class TestMemory:
    def test_basic_read_write(self):
        mem = Memory(8, 8)
        mem[3] = 0x5A
        assert mem[3] == 0x5A
        assert len(mem) == 8
        assert mem.bits == 64

    def test_wrapping_address_and_value(self):
        mem = Memory(4, 8)
        mem[5] = 0x1FF   # address wraps to 1, value masked to 8 bits
        assert mem[1] == 0xFF

    def test_init_and_dump(self):
        mem = Memory(4, 8, init=[1, 2])
        assert mem.dump() == [1, 2, 0, 0]
        assert mem.dump(1, 2) == [2, 0]

    def test_load(self):
        mem = Memory(4, 8)
        mem.load([9, 8], offset=2)
        assert mem.dump() == [0, 0, 9, 8]

    def test_load_overflow_rejected(self):
        with pytest.raises(ElaborationError):
            Memory(4, 8).load([1, 2, 3], offset=2)

    def test_oversized_init_rejected(self):
        with pytest.raises(ElaborationError):
            Memory(2, 8, init=[1, 2, 3])

    def test_bad_geometry_rejected(self):
        with pytest.raises(ElaborationError):
            Memory(0, 8)
        with pytest.raises(ElaborationError):
            Memory(8, 0)

    def test_memory_bits_accounting(self):
        comp = Component("c")
        comp.memory(16, 8)
        comp.memory(4, 4)
        assert comp.memory_bits() == 16 * 8 + 16
        assert len(comp.memories) == 2
