"""Unit and property tests for the fixed-width value type."""

import pytest
from hypothesis import given, strategies as st

from repro.rtl import Bits, WidthError, bits_for, clog2, mask


class TestHelpers:
    def test_mask(self):
        assert mask(0) == 0
        assert mask(1) == 1
        assert mask(8) == 0xFF
        assert mask(16) == 0xFFFF

    def test_mask_negative_width(self):
        with pytest.raises(WidthError):
            mask(-1)

    def test_bits_for(self):
        assert bits_for(0) == 1
        assert bits_for(1) == 1
        assert bits_for(2) == 2
        assert bits_for(255) == 8
        assert bits_for(256) == 9

    def test_bits_for_negative(self):
        with pytest.raises(WidthError):
            bits_for(-1)

    def test_clog2(self):
        assert clog2(1) == 0
        assert clog2(2) == 1
        assert clog2(3) == 2
        assert clog2(512) == 9
        assert clog2(513) == 10

    def test_clog2_invalid(self):
        with pytest.raises(WidthError):
            clog2(0)


class TestConstruction:
    def test_basic(self):
        b = Bits(8, 0x5A)
        assert b.width == 8
        assert b.value == 0x5A
        assert int(b) == 0x5A
        assert len(b) == 8

    def test_wraps_on_construction(self):
        assert Bits(8, 0x1FF).value == 0xFF
        assert Bits(4, 16).value == 0

    def test_zero_width_rejected(self):
        with pytest.raises(WidthError):
            Bits(0, 0)

    def test_max(self):
        assert Bits(5).max == 31

    def test_bool(self):
        assert not Bits(8, 0)
        assert Bits(8, 1)

    def test_from_signed_roundtrip(self):
        b = Bits.from_signed(8, -1)
        assert b.value == 0xFF
        assert b.signed() == -1
        assert Bits.from_signed(8, 127).signed() == 127
        assert Bits.from_signed(8, -128).signed() == -128

    def test_resize(self):
        assert Bits(8, 0xAB).resize(4).value == 0xB
        assert Bits(4, 0xB).resize(8).value == 0xB


class TestSlicing:
    def test_single_bit(self):
        b = Bits(8, 0b1010_0101)
        assert int(b[0]) == 1
        assert int(b[1]) == 0
        assert int(b[7]) == 1
        assert b.bit(5) == 1

    def test_negative_index(self):
        assert int(Bits(8, 0x80)[-1]) == 1

    def test_out_of_range(self):
        with pytest.raises(WidthError):
            Bits(8)[8]

    def test_slice_msb_lsb(self):
        b = Bits(8, 0xA5)
        assert b[7:4].value == 0xA
        assert b[3:0].value == 0x5
        assert b[7:4].width == 4

    def test_slice_full_default(self):
        b = Bits(8, 0xA5)
        assert b[:].value == 0xA5

    def test_slice_wrong_order(self):
        with pytest.raises(WidthError):
            Bits(8)[0:7]

    def test_slice_out_of_range(self):
        with pytest.raises(WidthError):
            Bits(8)[9:0]


class TestConcatSplit:
    def test_concat(self):
        high = Bits(8, 0xAB)
        low = Bits(8, 0xCD)
        joined = high.concat(low)
        assert joined.width == 16
        assert joined.value == 0xABCD

    def test_join(self):
        parts = [Bits(4, 0xA), Bits(4, 0xB), Bits(4, 0xC)]
        assert Bits.join(parts).value == 0xABC

    def test_join_empty(self):
        with pytest.raises(WidthError):
            Bits.join([])

    def test_replicate(self):
        assert Bits(4, 0xA).replicate(3).value == 0xAAA

    def test_split(self):
        parts = Bits(24, 0xABCDEF).split(8)
        assert [p.value for p in parts] == [0xAB, 0xCD, 0xEF]
        assert all(p.width == 8 for p in parts)

    def test_split_indivisible(self):
        with pytest.raises(WidthError):
            Bits(10, 0).split(3)


class TestArithmetic:
    def test_add_wraps(self):
        assert (Bits(8, 0xFF) + 1).value == 0
        assert (Bits(8, 200) + Bits(8, 100)).value == (300 % 256)

    def test_sub_wraps(self):
        assert (Bits(8, 0) - 1).value == 0xFF

    def test_radd_rsub(self):
        assert (1 + Bits(8, 1)).value == 2
        assert (0 - Bits(8, 1)).value == 0xFF

    def test_mul(self):
        assert (Bits(8, 16) * 16).value == 0
        assert (Bits(16, 16) * 16).value == 256

    def test_div_mod(self):
        assert (Bits(8, 100) // 7).value == 14
        assert (Bits(8, 100) % 7).value == 2

    def test_shifts(self):
        assert (Bits(8, 0x81) << 1).value == 0x02
        assert (Bits(8, 0x81) >> 1).value == 0x40

    def test_bitwise(self):
        assert (Bits(8, 0xF0) & 0x3C).value == 0x30
        assert (Bits(8, 0xF0) | 0x0F).value == 0xFF
        assert (Bits(8, 0xFF) ^ 0x0F).value == 0xF0
        assert (~Bits(8, 0x0F)).value == 0xF0

    def test_comparisons(self):
        assert Bits(8, 5) == 5
        assert Bits(8, 5) == Bits(16, 5)
        assert Bits(8, 5) != 6
        assert Bits(8, 5) < 6
        assert Bits(8, 5) <= 5
        assert Bits(8, 5) > 4
        assert Bits(8, 5) >= 5

    def test_formatting(self):
        assert Bits(8, 5).bin() == "00000101"
        assert Bits(12, 0xAB).hex() == "0ab"
        assert "Bits(8" in repr(Bits(8, 1))

    def test_hashable(self):
        assert len({Bits(8, 1), Bits(8, 1), Bits(4, 1)}) == 2


# ---------------------------------------------------------------------------
# Property-based tests
# ---------------------------------------------------------------------------

widths = st.integers(min_value=1, max_value=64)
values = st.integers(min_value=0, max_value=2 ** 64 - 1)


@given(width=widths, value=values)
def test_value_always_fits_width(width, value):
    b = Bits(width, value)
    assert 0 <= b.value <= mask(width)


@given(width=widths, a=values, b=values)
def test_add_matches_modular_arithmetic(width, a, b):
    assert (Bits(width, a) + b).value == (a % 2 ** width + b) % 2 ** width


@given(width=widths, a=values, b=values)
def test_sub_matches_modular_arithmetic(width, a, b):
    assert (Bits(width, a) - b).value == ((a % 2 ** width) - b) % 2 ** width


@given(width=st.integers(min_value=1, max_value=16),
       part=st.integers(min_value=1, max_value=16),
       value=values)
def test_split_join_roundtrip(width, part, value):
    total = width * part
    original = Bits(total, value)
    assert Bits.join(original.split(width)).value == original.value


@given(width=widths, value=values)
def test_invert_is_involution(width, value):
    b = Bits(width, value)
    assert (~~b).value == b.value


@given(width=widths, value=values)
def test_signed_roundtrip(width, value):
    b = Bits(width, value)
    assert Bits.from_signed(width, b.signed()).value == b.value


@given(width=widths, value=values, shift=st.integers(min_value=0, max_value=70))
def test_shift_right_never_exceeds_width(width, value, shift):
    assert (Bits(width, value) >> shift).value <= mask(width)
