"""Unit tests for the FSM helper."""

import pytest

from repro.rtl import Component, ElaborationError, FSM, Simulator


class Stepper(Component):
    """Three-state machine cycling IDLE -> RUN -> DONE -> IDLE."""

    def __init__(self):
        super().__init__("stepper")
        self.fsm = FSM(self, ["IDLE", "RUN", "DONE"], name="ctrl")

        @self.seq
        def advance():
            if self.fsm.is_in("IDLE"):
                self.fsm.goto("RUN")
            elif self.fsm.is_in("RUN"):
                self.fsm.goto("DONE")
            else:
                self.fsm.goto("IDLE")


def test_encoding_and_decoding():
    comp = Component("c")
    fsm = FSM(comp, ["A", "B", "C"])
    assert fsm.encode("A") == 0
    assert fsm.encode("C") == 2
    assert fsm.decode(1) == "B"
    assert fsm.A == 0 and fsm.B == 1 and fsm.C == 2
    assert fsm.num_states == 3
    assert fsm.width == 2


def test_state_register_width_single_state():
    comp = Component("c")
    fsm = FSM(comp, ["ONLY"])
    assert fsm.width == 1


def test_initial_state_selection():
    comp = Component("c")
    fsm = FSM(comp, ["A", "B"], initial="B")
    assert fsm.current == "B"


def test_invalid_configurations():
    comp = Component("c")
    with pytest.raises(ElaborationError):
        FSM(comp, [])
    with pytest.raises(ElaborationError):
        FSM(comp, ["A", "A"])
    with pytest.raises(ElaborationError):
        FSM(comp, ["A"], initial="Z")
    fsm = FSM(comp, ["A", "B"])
    with pytest.raises(ElaborationError):
        fsm.encode("Z")
    with pytest.raises(ElaborationError):
        fsm.decode(5)


def test_transitions_in_simulation():
    design = Stepper()
    sim = Simulator(design)
    assert design.fsm.current == "IDLE"
    sim.step()
    assert design.fsm.current == "RUN"
    sim.step()
    assert design.fsm.current == "DONE"
    sim.step()
    assert design.fsm.current == "IDLE"
    observed = design.fsm.observed_transitions()
    assert ("IDLE", "RUN") in observed
    assert ("RUN", "DONE") in observed
    assert ("DONE", "IDLE") in observed


def test_stay_keeps_state():
    comp = Component("c")
    fsm = FSM(comp, ["A", "B"])

    @comp.seq
    def hold():
        fsm.stay()

    sim = Simulator(comp)
    sim.step(3)
    assert fsm.current == "A"


def test_fsm_adds_state_bits_to_component():
    comp = Component("c")
    FSM(comp, ["A", "B", "C", "D", "E"])
    assert comp.state_bits() == 3


def test_repr_mentions_current_state():
    comp = Component("c")
    fsm = FSM(comp, ["A", "B"], name="ctrl")
    assert "ctrl" in repr(fsm)
    assert "A" in repr(fsm)
