"""Unit tests for the compiled simulation backend (``repro.rtl.compile``).

The differential suite (``test_strategy_equivalence.py``) proves the
compiled strategy agrees with the oracle on every shipped design; this file
tests the compiler's layers directly: static read/write analysis, dependency
scheduling, source emission and the safety fallbacks (guarded convergence
for opaque processes, miss detection, combinational-loop reporting).
"""

import pytest

from repro.rtl import (
    COMPILED,
    FIXPOINT,
    CombinationalLoopError,
    Component,
    FSM,
    Recorder,
    Simulator,
)
from repro.rtl.compile import analyze_proc, build_schedule, compile_design


# -- helper designs --------------------------------------------------------------


class _Plumbing(Component):
    """Simple wire plumbing: everything should dissolve into straight code."""

    def __init__(self):
        super().__init__("plumb")
        self.a = self.state(8)
        self.b = self.signal(8)
        self.c = self.signal(4)
        self.flag = self.signal(1)

        @self.comb
        def wires():
            self.b.next = self.a.value + 1
            self.c.next = self.b.value  # deliberately narrower: must mask
            self.flag.next = 1 if self.b.value > 10 else 0

        @self.seq
        def advance():
            self.a.next = self.a.value + 3


class _Branchy(Component):
    """Reads hidden behind a branch that the initial state never takes."""

    def __init__(self):
        super().__init__("branchy")
        self.sel = self.state(1)
        self.x = self.state(8, init=5)
        self.y = self.state(8, init=9)
        self.out = self.signal(8)

        @self.comb
        def pick():
            if self.sel.value:
                self.out.next = self.y.value
            else:
                self.out.next = self.x.value

        @self.seq
        def flip():
            self.sel.next = 1 - self.sel.value


class _Chained(Component):
    """b depends on a, c on b: scheduling must order writer before reader."""

    def __init__(self):
        super().__init__("chained")
        self.a = self.state(8)
        self.b = self.signal(8)
        self.c = self.signal(8)

        @self.comb
        def second():       # registered first, but depends on ``b``
            self.c.next = self.b.value * 2

        @self.comb
        def first():
            self.b.next = self.a.value + 1

        @self.seq
        def advance():
            self.a.next = self.a.value + 1


class _Feedback(Component):
    """A converging combinational feedback loop (SR-latch style)."""

    def __init__(self):
        super().__init__("feedback")
        self.start = self.state(1)
        self.enable = self.state(1, init=1)
        self.a = self.signal(1)
        self.b = self.signal(1)

        @self.comb
        def forward():
            self.a.next = 1 if (self.b.value or self.start.value) else 0

        @self.comb
        def backward():
            self.b.next = 1 if (self.a.value and self.enable.value) else 0

        @self.seq
        def drive():
            self.start.next = 1 if self.start.value == 0 and self.a.value == 0 else 0
            if self.a.value and self.start.value == 0:
                self.enable.next = 0


class _TrueLoop(Component):
    """A diverging combinational loop: must raise, like the other engines."""

    def __init__(self):
        super().__init__("loop")
        self.a = self.signal(8)

        @self.comb
        def oscillate():
            self.a.next = self.a.value + 1


#: A callable the analyser cannot see through (no retrievable source).
_mystery_opaque = eval("lambda: 1")


class _Opaque(Component):
    """One process the analyser must give up on -> guarded settle."""

    def __init__(self):
        super().__init__("opaque")
        self.a = self.state(8)
        self.b = self.signal(8)
        self.c = self.signal(8)

        @self.comb
        def fine():
            self.b.next = self.a.value + 1

        @self.comb
        def murky():
            self.c.next = self.b.value + _mystery_opaque()

        @self.seq
        def advance():
            self.a.next = self.a.value + 1


class _FsmComb(Component):
    """fsm.is_in inside a combinational process transpiles to a compare."""

    def __init__(self):
        super().__init__("fsmcomb")
        self.busy = self.signal(1)
        self.fsm = FSM(self, ["IDLE", "RUN", "DONE"], name="ctrl")

        @self.comb
        def status():
            self.busy.next = 0 if self.fsm.is_in("IDLE") else 1

        @self.seq
        def advance():
            if self.fsm.is_in("IDLE"):
                self.fsm.goto("RUN")
            elif self.fsm.is_in("RUN"):
                self.fsm.goto("DONE")


class _MemReader(Component):
    """Combinational memory read indexed by a register."""

    def __init__(self):
        super().__init__("memread")
        self.addr = self.state(3)
        self.dout = self.signal(8)
        self.mem = self.memory(8, 8, init=[10, 20, 30, 40, 50, 60, 70, 80])

        @self.comb
        def read():
            self.dout.next = self.mem[self.addr.value]

        @self.seq
        def advance():
            self.addr.next = self.addr.value + 1


class _ListIndexed(Component):
    """Dynamic indexing into a Python list of signals reads *all* of them."""

    def __init__(self):
        super().__init__("listidx")
        self.sel = self.state(2)
        self.out = self.signal(8)
        self.regs = [self.state(8, init=7 * (i + 1), name=f"r{i}")
                     for i in range(4)]

        @self.comb
        def mux():
            self.out.next = self.regs[self.sel.value % 4].value

        @self.seq
        def advance():
            self.sel.next = self.sel.value + 1


# -- analyser ---------------------------------------------------------------------


def test_analysis_covers_both_branches():
    top = _Branchy()
    (analysis,) = [analyze_proc(p) for p in top.all_comb_procs()]
    assert not analysis.opaque
    assert top.x in analysis.reads
    assert top.y in analysis.reads  # the branch not taken at reset
    assert top.sel in analysis.reads
    assert analysis.writes == {top.out}


def test_analysis_dissolves_plumbing_statements():
    top = _Plumbing()
    (analysis,) = [analyze_proc(p) for p in top.all_comb_procs()]
    assert analysis.transpilable
    assert len(analysis.units) == 3
    assert analysis.units[0].writes == {top.b}
    assert analysis.units[1].reads == {top.b}


def test_analysis_dynamic_list_index_reads_every_element():
    top = _ListIndexed()
    (analysis,) = [analyze_proc(p) for p in top.all_comb_procs()]
    assert not analysis.opaque
    assert set(top.regs) <= analysis.reads


def test_analysis_memory_read():
    top = _MemReader()
    (analysis,) = [analyze_proc(p) for p in top.all_comb_procs()]
    assert analysis.mem_reads == {top.mem}
    assert analysis.writes == {top.dout}


def test_analysis_flags_unresolvable_call_as_opaque():
    top = _Opaque()
    analyses = [analyze_proc(p) for p in top.all_comb_procs()]
    opaque = [a for a in analyses if a.opaque]
    assert len(opaque) == 1
    assert opaque[0].opaque_reasons, "the reason must be recorded for debugging"


def test_analysis_fsm_is_in_reads_state_register():
    top = _FsmComb()
    (analysis,) = [analyze_proc(p) for p in top.all_comb_procs()]
    assert not analysis.opaque
    assert top.fsm.state in analysis.reads


# -- scheduling -------------------------------------------------------------------


def test_schedule_orders_writer_before_reader():
    top = _Chained()
    analyses = [analyze_proc(p) for p in top.all_comb_procs()]
    schedule = build_schedule(analyses)
    order = []
    for group in schedule.groups:
        assert not group.cyclic
        for unit in group.units:
            order.extend(sig.name for sig in unit.writes)
    assert order.index(top.b.name) < order.index(top.c.name)


def test_schedule_detects_feedback_group():
    top = _Feedback()
    analyses = [analyze_proc(p) for p in top.all_comb_procs()]
    schedule = build_schedule(analyses)
    cyclic = [g for g in schedule.groups if g.cyclic]
    assert len(cyclic) == 1
    assert len(cyclic[0].units) == 2


# -- emitted program ---------------------------------------------------------------


def test_generated_source_inlines_masks_and_fuses_commits():
    top = _Plumbing()
    sim = Simulator(top, strategy=COMPILED)
    source = sim.compiled_source
    assert "& 15" in source       # the 4-bit mask of ``c``, inlined
    assert "._value = " in source
    assert "._next = " in source
    report = sim.compile_report
    assert report.n_transpiled_procs == 1
    assert report.n_opaque_procs == 0
    assert not report.guarded


def test_compiled_masks_narrow_assignments():
    results = []
    for strategy in (FIXPOINT, COMPILED):
        top = _Plumbing()
        sim = Simulator(top, strategy=strategy)
        values = []
        for _ in range(12):
            sim.step()
            values.append((top.b.value, top.c.value, top.flag.value))
        results.append(values)
    assert results[0] == results[1]
    assert any(c != b for b, c, _ in results[0])  # masking actually bit


def test_compiled_feedback_group_converges_and_matches_oracle():
    results = []
    for strategy in (FIXPOINT, COMPILED):
        top = _Feedback()
        sim = Simulator(top, strategy=strategy)
        recorder = Recorder(sim, [top.start, top.enable, top.a, top.b])
        sim.step(8)
        results.append(recorder.rows)
    assert results[0] == results[1]


def test_compiled_raises_on_true_combinational_loop():
    with pytest.raises(CombinationalLoopError):
        Simulator(_TrueLoop(), strategy=COMPILED)


def test_opaque_process_falls_back_to_guarded_convergence():
    results = []
    for strategy in (FIXPOINT, COMPILED):
        top = _Opaque()
        sim = Simulator(top, strategy=strategy)
        recorder = Recorder(sim, [top.a, top.b, top.c])
        sim.step(6)
        results.append(recorder.rows)
        if strategy == COMPILED:
            assert sim.compile_report.guarded
            assert sim.compile_report.n_opaque_procs == 1
            assert sim.analysis_misses == 0
    assert results[0] == results[1]


def test_compiled_fsm_compare_matches_oracle():
    results = []
    for strategy in (FIXPOINT, COMPILED):
        top = _FsmComb()
        sim = Simulator(top, strategy=strategy)
        values = []
        for _ in range(4):
            sim.step()
            values.append((top.fsm.state.value, top.busy.value))
        results.append(values)
    assert results[0] == results[1]
    # The transpiled compare must appear in the generated source.
    top = _FsmComb()
    sim = Simulator(top, strategy=COMPILED)
    assert "== 0" in sim.compiled_source


def test_compiled_memory_read_matches_oracle():
    results = []
    for strategy in (FIXPOINT, COMPILED):
        top = _MemReader()
        sim = Simulator(top, strategy=strategy)
        values = []
        for _ in range(10):
            sim.step()
            values.append(top.dout.value)
        results.append(values)
    assert results[0] == results[1]
    top = _MemReader()
    sim = Simulator(top, strategy=COMPILED)
    assert "._data[" in sim.compiled_source


def test_compiled_dynamic_mux_matches_oracle():
    results = []
    for strategy in (FIXPOINT, COMPILED):
        top = _ListIndexed()
        sim = Simulator(top, strategy=strategy)
        values = []
        for _ in range(8):
            sim.step()
            values.append(top.out.value)
        results.append(values)
    assert results[0] == results[1]


def test_compiled_verify_mode_is_silent_on_correct_designs():
    top = _Plumbing()
    sim = Simulator(top, strategy=COMPILED, verify=True)
    sim.step(20)
    assert sim.analysis_misses == 0


def test_compiled_force_wakes_the_schedule():
    top = _Branchy()
    sim = Simulator(top, strategy=COMPILED)
    assert top.out.value == top.x.value
    top.sel.force(1)
    sim.settle()
    assert top.out.value == top.y.value


def test_compiled_declared_sensitivity_is_respected():
    class Declared(Component):
        def __init__(self):
            super().__init__("declared")
            self.a = self.state(8)
            self.b = self.signal(8)

            @self.comb(sensitivity=[self.a])
            def mirror():
                self.b.next = self.a.value

            @self.seq
            def advance():
                self.a.next = self.a.value + 1

    results = []
    for strategy in (FIXPOINT, COMPILED):
        top = Declared()
        sim = Simulator(top, strategy=strategy)
        sim.step(5)
        results.append((top.a.value, top.b.value))
    assert results[0] == results[1]


def test_compile_design_report_counts():
    top = _Chained()
    program = compile_design(top.all_comb_procs(), top.all_seq_procs())
    report = program.report
    assert report.n_procs == 2
    assert report.n_transpiled_procs == 2
    assert report.n_units == 2
    assert report.n_cyclic_groups == 0
    assert "dissolved" in report.summary()


def test_source_cache_makes_recompiles_cheap():
    """Two instances of the same class share process code objects."""
    first = Simulator(_Plumbing(), strategy=COMPILED)
    second = Simulator(_Plumbing(), strategy=COMPILED)
    assert first.compiled_source == second.compiled_source
