"""Batched lockstep simulation: lane semantics beyond the differential oracle.

``tests/rtl/test_strategy_equivalence.py`` proves every lane of a batched
run bit-identical to the scalar strategies on the shipped designs; this
module covers the batch-specific surface: ragged lane counts, cyclic comb
groups whose lanes converge at different iteration counts, the per-lane
fallback path for unvectorizable processes, lane-permutation and
batch-splitting invariance, attach/detach ownership, reset and watchers.
"""

import random

import pytest

from repro.designs import VideoSystem, build_saa2vga_pattern
from repro.rtl import (
    COMPILED,
    COMPILED_BATCHED,
    EVENT,
    FIXPOINT,
    BatchedSimulator,
    Component,
    SimulationError,
    Simulator,
    batch_groups,
)
from repro.video import flatten, random_frame


def _make_system(frame, capacity=8):
    return VideoSystem(build_saa2vga_pattern("fifo", capacity=capacity),
                       frames=[frame])


def _scalar_run(frame, strategy=COMPILED, capacity=8):
    system = _make_system(frame, capacity=capacity)
    sim = Simulator(system, strategy=strategy)
    expected = flatten(frame)
    sim.run_until(lambda: system.sink.count >= len(expected), 50_000)
    return system.received_pixels(), sim.cycles


def _batched_run(frames, capacity=8):
    systems = [_make_system(frame, capacity=capacity) for frame in frames]
    batch = BatchedSimulator(systems)
    conditions = [(lambda s=system, n=len(flatten(frame)): s.sink.count >= n)
                  for system, frame in zip(systems, frames)]
    done = batch.run_lockstep(conditions, max_cycles=50_000)
    return [(system.received_pixels()[:len(flatten(frame))], cycles)
            for system, frame, cycles in zip(systems, frames, done)]


# -- ragged batches -----------------------------------------------------------


@pytest.mark.parametrize("n_lanes", [1, 5])
def test_ragged_batch_sizes_match_scalar(n_lanes):
    """N=1 and N not a power of two, with per-lane frame shapes, must each
    reproduce the scalar per-point runs exactly (early-finishing lanes keep
    clocking while the longest lane drains — their results may not drift)."""
    shapes = [(8, 5), (10, 6), (6, 9), (12, 4), (9, 7)][:n_lanes]
    frames = [random_frame(w, h, seed=30 + i)
              for i, (w, h) in enumerate(shapes)]
    scalar = [_scalar_run(frame) for frame in frames]
    assert _batched_run(frames) == scalar


# -- mixed-convergence cyclic groups ------------------------------------------


class _Ripple(Component):
    """Two comb processes in a feedback cycle whose fixpoint arrives after a
    data-dependent number of iterations: ``acc = inp | (acc >> 1)`` smears
    the highest input bit toward the LSB one iteration at a time, so lanes
    holding different inputs settle at different iteration counts."""

    def __init__(self):
        super().__init__("ripple")
        self.inp = self.signal(8)
        self.mid = self.signal(8)
        self.acc = self.signal(8)
        self.total = self.state(16)

        @self.comb
        def shift():
            self.mid.next = self.acc.value >> 1

        @self.comb
        def accumulate():
            self.acc.next = self.inp.value | self.mid.value

        @self.seq
        def integrate():
            self.total.next = self.total.value + self.acc.value


def test_cyclic_group_lanes_converge_independently():
    """Lanes needing 1..8 settle iterations in the same cyclic group must
    each land on exactly the scalar fixpoint, cycle after cycle."""
    stimuli = [0x80, 0x01, 0x24, 0x00]  # 8, 1, ~4 and 0 smear iterations
    scalars = []
    for value in stimuli:
        top = _Ripple()
        sim = Simulator(top, strategy=FIXPOINT)
        trace = []
        for cycle in range(6):
            top.inp.force((value + cycle) & 0xFF)
            sim.settle()
            trace.append((top.acc.value, top.mid.value))
            sim.step()
            trace.append(top.total.value)
        scalars.append(trace)

    tops = [_Ripple() for _ in stimuli]
    batch = BatchedSimulator(tops)
    report = batch.batch_report
    assert report.n_cyclic_groups >= 1 or report.guarded
    traces = [[] for _ in stimuli]
    for cycle in range(6):
        for top, value in zip(tops, stimuli):
            top.inp.force((value + cycle) & 0xFF)
        batch.settle()
        for lane, top in enumerate(tops):
            traces[lane].append((top.acc.value, top.mid.value))
        batch.step()
        for lane, top in enumerate(tops):
            traces[lane].append(top.total.value)
    assert traces == scalars


# -- per-lane fallback for unvectorizable processes ---------------------------


class _Checksum(Component):
    """A comb process the vectorizer cannot transpile (a ``for`` loop): the
    batched backend must still simulate it, lane by lane."""

    def __init__(self):
        super().__init__("checksum")
        self.inp = self.signal(8)
        self.out = self.signal(8)
        self.hist = self.state(8)

        @self.comb
        def fold():
            total = 0
            for shift in (0, 2, 4, 6):
                total ^= (self.inp.value >> shift) & 0x3
            self.out.next = total

        @self.seq
        def accumulate():
            self.hist.next = self.hist.value + self.out.value


def test_unvectorizable_proc_falls_back_per_lane():
    values = [0x00, 0x5A, 0xFF]
    scalars = []
    for value in values:
        top = _Checksum()
        sim = Simulator(top, strategy=EVENT)
        trace = []
        for cycle in range(8):
            top.inp.force((value ^ (cycle * 37)) & 0xFF)
            sim.settle()
            trace.append(top.out.value)
            sim.step()
            trace.append(top.hist.value)
        scalars.append(trace)

    tops = [_Checksum() for _ in values]
    batch = BatchedSimulator(tops)
    report = batch.batch_report
    assert report.n_lane_call_comb + report.n_opaque_procs >= 1
    assert report.fallback_reasons
    traces = [[] for _ in values]
    for cycle in range(8):
        for top, value in zip(tops, values):
            top.inp.force((value ^ (cycle * 37)) & 0xFF)
        batch.settle()
        for lane, top in enumerate(tops):
            traces[lane].append(top.out.value)
        batch.step()
        for lane, top in enumerate(tops):
            traces[lane].append(top.hist.value)
    assert traces == scalars


# -- lane permutation / batch splitting invariance ----------------------------


@pytest.mark.parametrize("trial", range(3))
def test_results_invariant_under_lane_permutation_and_splitting(trial):
    """Property: per-point results may not depend on where a point sits in
    a batch, nor on how the batch is cut — any dependence would reveal
    hidden cross-lane state."""
    rng = random.Random(9000 + trial)
    shapes = [(rng.randint(5, 12), rng.randint(4, 9)) for _ in range(5)]
    frames = [random_frame(w, h, seed=rng.randint(0, 10_000))
              for w, h in shapes]

    baseline = _batched_run(frames)

    order = list(range(len(frames)))
    rng.shuffle(order)
    permuted = _batched_run([frames[i] for i in order])
    assert permuted == [baseline[i] for i in order]

    cut = rng.randint(1, len(frames) - 1)
    split = _batched_run(frames[:cut]) + _batched_run(frames[cut:])
    assert split == baseline


# -- lane packing -------------------------------------------------------------


def test_incompatible_lanes_rejected_and_grouped():
    """Different capacities bake different memory shapes into the program:
    one BatchedSimulator must refuse the mix, and batch_groups must split
    it into compatible lane sets covering every index exactly once."""
    systems = [_make_system(random_frame(8, 5, seed=i), capacity=cap)
               for i, cap in enumerate([8, 16, 8, 16, 8])]
    with pytest.raises(SimulationError, match="batch-compatible"):
        BatchedSimulator(systems)
    groups = batch_groups(systems)
    assert sorted(i for indices, _ in groups for i in indices) == [0, 1, 2, 3, 4]
    assert [indices for indices, _ in groups] == [[0, 2, 4], [1, 3]]
    for indices, programs in groups:
        batch = BatchedSimulator([systems[i] for i in indices],
                                 programs=programs)
        assert batch.n_lanes == len(indices)


# -- emit-once + rebind -------------------------------------------------------


def test_sibling_lanes_reuse_one_emission(monkeypatch):
    """Constructing a batch over N sibling designs must run the emitter
    once: every other lane is proven recipe-identical and rebound.  A
    second construction reuses the cached reference emission outright."""
    from repro.rtl import batch as batch_module
    from repro.rtl.compile import emit_batched

    emissions = []
    real = emit_batched.emit_batched_program

    def counted(*args, **kwargs):
        emissions.append(1)
        return real(*args, **kwargs)

    monkeypatch.setattr(emit_batched, "emit_batched_program", counted)
    batch_module._REFERENCE_CACHE.clear()

    frames = [random_frame(8, 5, seed=40 + i) for i in range(6)]
    batch = BatchedSimulator([_make_system(frame) for frame in frames])
    assert batch.n_lanes == 6
    assert len(emissions) == 1

    BatchedSimulator([_make_system(frame) for frame in frames[:3]])
    assert len(emissions) == 1


def test_rebind_accepts_stimulus_siblings_and_rejects_baked_mismatch():
    """Rebinding must succeed across lanes that differ only in runtime
    payload (any frame shape), yielding a byte-identical program — and
    must bail for a design whose baked constants differ (capacity changes
    the memory shape and the folded guards)."""
    from repro.rtl.compile.emit_batched import emit_batched_program
    from repro.rtl.compile.rebind import rebind_batched_program

    reference = emit_batched_program(_make_system(random_frame(8, 5, seed=50)))
    sibling = _make_system(random_frame(10, 4, seed=51))
    rebound = rebind_batched_program(reference, sibling)
    assert rebound is not None
    assert rebound.source is reference.source
    assert rebound.signature == reference.signature
    assert rebound.signals == sibling.all_signals()

    other = _make_system(random_frame(8, 5, seed=52), capacity=16)
    assert rebind_batched_program(reference, other) is None


def test_rebind_rejects_reference_that_drifted_since_emission():
    """A cached program is only reusable while its own design still holds
    every value the source baked: mutating a folded attribute on the
    *reference* design must invalidate rebinding (this is what makes the
    cross-construction reference cache sound)."""
    from repro.rtl.compile.emit_batched import emit_batched_program
    from repro.rtl.compile.rebind import rebind_batched_program

    ref_top = _make_system(random_frame(8, 5, seed=60))
    sibling = _make_system(random_frame(8, 5, seed=61))
    reference = emit_batched_program(ref_top)
    assert rebind_batched_program(reference, sibling) is not None

    assert reference.bake_attrs, "expected folded scalar attributes"
    owner, attr, value = next((entry for entry in reference.bake_attrs
                               if isinstance(entry[2], int)),
                              reference.bake_attrs[0])
    setattr(owner, attr, value + 1 if isinstance(value, int) else "drift")
    assert rebind_batched_program(reference, sibling) is None
    setattr(owner, attr, value)
    assert rebind_batched_program(reference, sibling) is not None


# -- ownership, reset, watchers ----------------------------------------------


class _Toggler(Component):
    def __init__(self):
        super().__init__("toggler")
        self.count = self.state(8)
        self.parity = self.signal(1)

        @self.comb
        def decode():
            self.parity.next = self.count.value & 1

        @self.seq
        def advance():
            self.count.next = self.count.value + 1


def test_scalar_simulator_supersedes_batch():
    tops = [_Toggler(), _Toggler()]
    batch = BatchedSimulator(tops)
    batch.step(2)
    replacement = Simulator(tops[0], strategy=EVENT)
    with pytest.raises(SimulationError):
        batch.step()
    with pytest.raises(SimulationError):
        batch.settle()
    replacement.step()
    assert tops[0].count.value == 3


def test_batch_supersedes_scalar_simulator():
    top = _Toggler()
    scalar = Simulator(top, strategy=COMPILED)
    scalar.step(2)
    batch = BatchedSimulator([top])
    with pytest.raises(SimulationError):
        scalar.step()
    batch.step()
    assert top.count.value == 3


def test_batched_reset_reproduces_first_run():
    frames = [random_frame(8, 5, seed=s) for s in (1, 2, 3)]
    systems = [_make_system(frame) for frame in frames]
    batch = BatchedSimulator(systems)
    conditions = [(lambda s=system, n=len(flatten(frame)): s.sink.count >= n)
                  for system, frame in zip(systems, frames)]
    first = batch.run_lockstep(conditions, max_cycles=50_000)
    pixels = [system.received_pixels() for system in systems]

    batch.reset()
    assert batch.cycles == 0
    for system in systems:
        system.sink.clear()
    again = batch.run_lockstep(conditions, max_cycles=50_000)
    assert again == first
    assert [system.received_pixels() for system in systems] == pixels


def test_lane_views_and_watchers():
    tops = [_Toggler(), _Toggler(), _Toggler()]
    batch = BatchedSimulator(tops)
    assert batch.strategy == COMPILED_BATCHED
    seen = {0: [], 2: []}
    for lane in seen:
        view = batch.lane(lane)
        assert view.top is tops[lane]
        assert view.strategy == COMPILED_BATCHED
        view.add_watcher(
            lambda cycle, lane=lane: seen[lane].append(
                (cycle, tops[lane].parity.value)))
    batch.step(4)
    # parity is decoded from the post-edge count: 1, 0, 1, 0 over 4 cycles
    assert seen[0] == seen[2] == [(1, 1), (2, 0), (3, 1), (4, 0)]
    assert batch.lane(1).cycles == 4
    with pytest.raises(SimulationError):
        batch.lane(1).remove_watcher(lambda cycle: None)


def test_run_lockstep_budget_names_unfinished_lanes():
    tops = [_Toggler(), _Toggler()]
    batch = BatchedSimulator(tops)
    conditions = [lambda: True, lambda: False]
    with pytest.raises(SimulationError, match=r"lanes \[1\]"):
        batch.run_lockstep(conditions, max_cycles=10)


def test_run_until_whole_batch_condition_reads_synced_signals():
    tops = [_Toggler(), _Toggler()]
    batch = BatchedSimulator(tops)
    elapsed = batch.run_until(
        lambda: all(top.count.value >= 5 for top in tops), max_cycles=100)
    assert elapsed == 5
    assert [top.count.value for top in tops] == [5, 5]
