"""Differential tests: every settle strategy must agree exactly.

The event-driven scheduler and the compiled backend are optimisations, not
semantics changes: on every design in ``repro.designs`` all strategies must
produce identical pixel streams, identical cycle counts and identical
per-cycle signal traces.  The fixpoint engine is the oracle because it
evaluates everything — it cannot miss a dependency.
"""

import pytest

from repro.designs import (
    BlurCustomDesign,
    Saa2VgaCustomFIFO,
    Saa2VgaCustomSRAM,
    VideoSystem,
    build_blur_histogram_pipeline,
    build_blur_pattern,
    build_dual_path_saa2vga,
    build_rgb_over_bus_pipeline,
    build_saa2vga_pattern,
)
from repro.rtl import (
    COMPILED,
    EVENT,
    FIXPOINT,
    Component,
    Recorder,
    SimulationError,
    Simulator,
)
from repro.video import flatten, golden_blur3x3, random_frame

#: The optimised strategies, each checked against the fixpoint oracle.
OPTIMISED = (EVENT, COMPILED)

FRAME = random_frame(10, 6, seed=77)
PIXELS = flatten(FRAME)
BLUR_GOLDEN = flatten(golden_blur3x3(FRAME))

DESIGNS = {
    "saa2vga pattern/fifo": (lambda: build_saa2vga_pattern("fifo", capacity=8),
                             PIXELS),
    "saa2vga pattern/sram": (lambda: build_saa2vga_pattern("sram", capacity=8),
                             PIXELS),
    "saa2vga custom/fifo": (lambda: Saa2VgaCustomFIFO(capacity=8), PIXELS),
    "saa2vga custom/sram": (lambda: Saa2VgaCustomSRAM(capacity=8), PIXELS),
    "blur pattern": (lambda: build_blur_pattern(line_width=10, out_capacity=8),
                     BLUR_GOLDEN),
    "blur custom": (lambda: BlurCustomDesign(line_width=10, out_capacity=8),
                    BLUR_GOLDEN),
    # Elaborated multi-stage pipeline graphs (repro.flow): split/merge over
    # two parallel copy paths, and a stream broadcast into a histogram tap.
    "flow dual-path": (lambda: build_dual_path_saa2vga(capacity=8,
                                                       fifo_depth=4),
                       PIXELS),
    "flow blur-hist": (lambda: build_blur_histogram_pipeline(line_width=10),
                       BLUR_GOLDEN),
    # Width-adapted pipeline: 24-bit endpoints over an 8-bit bus core (the
    # converters are auto-inserted by the elaborator).
    "flow rgb-bus": (lambda: build_rgb_over_bus_pipeline(capacity=8,
                                                         fifo_depth=4),
                     PIXELS),
}


def trace_design(factory, expected, strategy):
    """Simulate a design sampling *every* signal each cycle."""
    system = VideoSystem(factory(), frames=[FRAME])
    sim = Simulator(system, strategy=strategy)
    recorder = Recorder(sim, system.all_signals())
    sim.run_until(lambda: system.sink.count >= len(expected), 50_000)
    return system.received_pixels(), sim.cycles, recorder.rows, sim


@pytest.mark.parametrize("strategy", OPTIMISED)
@pytest.mark.parametrize("label", sorted(DESIGNS))
def test_traces_identical_to_fixpoint_oracle(label, strategy):
    factory, expected = DESIGNS[label]
    pixels, cycles, rows, sim = trace_design(factory, expected, strategy)
    fp_pixels, fp_cycles, fp_rows, _ = trace_design(factory, expected, FIXPOINT)
    assert pixels == expected
    assert pixels == fp_pixels
    assert cycles == fp_cycles
    assert rows == fp_rows
    if strategy == COMPILED:
        assert sim.analysis_misses == 0, \
            "static analysis under-approximated a write set"


@pytest.mark.parametrize("label", sorted(DESIGNS))
def test_compiled_analysis_resolves_all_shipped_processes(label):
    """No shipped process may fall back to the opaque convergence path, and
    the compiled settle must land exactly on the oracle's fixed point (the
    ``verify=True`` cross-check re-runs the fixpoint oracle every settle)."""
    factory, expected = DESIGNS[label]
    system = VideoSystem(factory(), frames=[FRAME])
    sim = Simulator(system, strategy=COMPILED, verify=True)
    report = sim.compile_report
    assert report.n_opaque_procs == 0, report.opaque_reasons
    assert not report.guarded
    assert report.n_transpiled_procs > 0, \
        "expected at least one process to dissolve into straight-line code"
    sim.run_until(lambda: system.sink.count >= len(expected), 50_000)
    assert system.received_pixels() == expected
    assert sim.analysis_misses == 0


@pytest.mark.parametrize("stalls", [(2, 0), (0, 3), (2, 3)])
def test_strategies_agree_under_backpressure(stalls):
    """Source/sink stalling exercises the idle paths the scheduler skips."""
    source_stall, sink_stall = stalls
    results = []
    for strategy in (EVENT, COMPILED, FIXPOINT):
        system = VideoSystem(build_saa2vga_pattern("fifo", capacity=8),
                             frames=[FRAME], source_stall=source_stall,
                             sink_stall=sink_stall)
        sim = system.simulate(len(PIXELS), max_cycles=50_000, strategy=strategy)
        results.append((system.received_pixels(), sim.cycles))
    assert results[0] == results[1] == results[2]
    assert results[0][0] == PIXELS


def test_unknown_strategy_rejected():
    with pytest.raises(SimulationError):
        Simulator(Component("empty"), strategy="levelized")


class _Toggler(Component):
    """Minimal clocked design for reset-behaviour tests."""

    def __init__(self):
        super().__init__("toggler")
        self.count = self.state(8)
        self.parity = self.signal(1)

        @self.comb
        def decode():
            self.parity.next = self.count.value & 1

        @self.seq
        def advance():
            self.count.next = self.count.value + 1


@pytest.mark.parametrize("strategy", [EVENT, FIXPOINT, COMPILED])
def test_reset_clears_recorder_and_resettles(strategy):
    """Regression: reset() must clear watcher state and re-run the initial
    settle under the selected strategy, so post-reset traces start clean."""
    top = _Toggler()
    sim = Simulator(top, strategy=strategy)
    recorder = Recorder(sim, [top.count, top.parity])
    sim.step(5)
    assert len(recorder.rows) == 5
    sim.reset()
    assert sim.cycles == 0
    assert recorder.rows == []          # watcher state cleared
    assert top.count.value == 0
    assert top.parity.value == 0        # combinational outputs re-settled
    sim.step(3)
    rows = recorder.rows
    assert [row["cycle"] for row in rows] == [1, 2, 3]
    assert [row[top.parity.name] for row in rows] == [1, 0, 1]


@pytest.mark.parametrize("strategy", OPTIMISED)
@pytest.mark.parametrize("label", ["saa2vga pattern/fifo", "blur pattern"])
def test_reset_then_rerun_reproduces_first_run(label, strategy):
    """After reset() the optimised schedulers must start from scratch and
    reproduce the first run exactly (same pixels, same cycle count)."""
    factory, expected = DESIGNS[label]
    system = VideoSystem(factory(), frames=[FRAME])
    sim = Simulator(system, strategy=strategy)
    sim.run_until(lambda: system.sink.count >= len(expected), 50_000)
    first = (system.received_pixels(), sim.cycles)
    assert first[0] == expected

    sim.reset()
    system.sink.clear()
    # The source replays its queued pixels after reset; the run must match.
    sim.run_until(lambda: system.sink.count >= len(expected), 50_000)
    assert (system.received_pixels(), sim.cycles) == first


@pytest.mark.parametrize("strategy", [EVENT, FIXPOINT, COMPILED])
def test_preconstruction_next_pokes_commit_identically(strategy):
    """A legal two-phase poke made before the simulator exists must be
    committed by the initial settle under either strategy."""
    chain = _Toggler()
    chain.count.next = 5
    sim = Simulator(chain, strategy=strategy)
    assert chain.count.value == 5
    assert chain.parity.value == 1
    sim.step()
    assert chain.count.value == 6


@pytest.mark.parametrize("strategy", OPTIMISED)
def test_superseded_simulator_raises_instead_of_stale_results(strategy):
    """Attaching a second simulator to the same hierarchy must not leave the
    first one silently returning stale values."""
    top = _Toggler()
    first = Simulator(top, strategy=strategy)
    first.step(2)
    Simulator(top, strategy=FIXPOINT)  # steals/detaches the hooks
    with pytest.raises(SimulationError):
        first.step()
    with pytest.raises(SimulationError):
        first.settle()


@pytest.mark.parametrize("strategy", OPTIMISED)
def test_superseded_simulator_raises_before_mutating_state(strategy):
    """The detached check must fire *before* the clock edge: a stale
    simulator stepping must not advance registers now owned by the
    replacement simulator (a phantom clock edge)."""
    top = _Toggler()
    first = Simulator(top, strategy=strategy)
    first.step(2)
    replacement = Simulator(top, strategy=FIXPOINT)
    count_before = top.count.value
    with pytest.raises(SimulationError):
        first.step()
    assert top.count.value == count_before
    replacement.step()
    assert top.count.value == count_before + 1


def test_wrapped_watcher_reset_via_explicit_hook():
    """Watchers that are not bound methods register their reset explicitly."""
    import functools

    top = _Toggler()
    sim = Simulator(top, strategy=EVENT)
    rows = []
    sample = functools.partial(lambda store, cycle: store.append(cycle), rows)
    sim.add_watcher(sample, on_reset=rows.clear)
    sim.step(4)
    assert rows == [1, 2, 3, 4]
    sim.reset()
    assert rows == []
    sim.step(2)
    assert rows == [1, 2]


@pytest.mark.parametrize("strategy", OPTIMISED)
def test_mid_simulation_frame_queueing_wakes_source(strategy):
    """Queueing pixels after the source went idle must wake it again (the
    optimised schedulers see the growth through the source's sensitivity
    anchor)."""
    system = VideoSystem(build_saa2vga_pattern("fifo", capacity=8),
                         frames=[FRAME])
    sim = Simulator(system, strategy=strategy)
    sim.run_until(lambda: system.sink.count >= len(PIXELS), 50_000)
    # Let the pipeline drain completely and go quiescent.
    sim.step(20)
    assert system.sink.count == len(PIXELS)
    second = random_frame(10, 6, seed=78)
    system.source.queue_frame(second)
    sim.run_until(lambda: system.sink.count >= 2 * len(PIXELS), 50_000)
    assert system.received_pixels() == PIXELS + flatten(second)


@pytest.mark.parametrize("strategy", [EVENT, FIXPOINT, COMPILED])
def test_rgb_over_8bit_bus_roundtrips_bit_exact(strategy):
    """Acceptance: full 24-bit RGB values over the 8-bit shared bus come
    back bit-exact under every settle strategy, with the width converters
    inserted by the elaborator — the scenario code instantiates none."""
    frame = random_frame(10, 6, seed=79, max_value=(1 << 24) - 1)
    pixels = flatten(frame)
    pipeline = build_rgb_over_bus_pipeline()
    # The adapters really are elaborator-inserted, not scenario-declared.
    from repro.metagen import WidthDownConverter, WidthUpConverter

    assert [type(a) for a in pipeline.adapters] == \
        [WidthDownConverter, WidthUpConverter]
    system = VideoSystem(pipeline, frames=[frame])
    sim = system.simulate(len(pixels), max_cycles=100_000, strategy=strategy)
    assert system.received_pixels() == pixels
    if strategy == COMPILED:
        assert sim.analysis_misses == 0


# -- randomized differential testing (beyond directed inputs) ----------------


RANDOM_DESIGNS = {
    "saa2vga pattern/fifo": lambda: build_saa2vga_pattern("fifo", capacity=8),
    "saa2vga pattern/sram": lambda: build_saa2vga_pattern("sram", capacity=8),
}


def drive_random_schedule(factory, schedule, strategy):
    """Replay a pre-drawn (push, data, pop) schedule, tracing every signal."""
    design = factory()
    sim = Simulator(design, strategy=strategy)
    recorder = Recorder(sim, design.all_signals())
    for push, data, pop in schedule:
        design.input_fill.data.force(data)
        design.input_fill.push.force(push)
        design.output_drain.pop.force(pop)
        sim.step()
    return recorder.rows


@pytest.mark.parametrize("strategy", OPTIMISED)
@pytest.mark.parametrize("label", sorted(RANDOM_DESIGNS))
def test_randomized_stimulus_traces_identical_across_strategies(label, strategy):
    """Constrained-random stimulus (blind strobes included) must produce
    cycle-identical full-signal traces under every settle strategy — the
    directed-input equivalence tests above only exercise the polite
    ready/valid-respecting corner of the stimulus space."""
    from repro.testing import random_stream_schedule

    schedule = random_stream_schedule(seed=2025, cycles=600,
                                      name=f"diff.{label}")
    factory = RANDOM_DESIGNS[label]
    rows = drive_random_schedule(factory, schedule, strategy)
    oracle = drive_random_schedule(factory, schedule, FIXPOINT)
    assert rows == oracle, \
        f"strategy {strategy} diverged from the fixpoint oracle " \
        f"(reproduce with REPRO_SEED=2025)"


@pytest.mark.parametrize("target", ["queue/sram", "vector/bram",
                                    "read_buffer/linebuffer3"])
def test_verification_sessions_identical_across_strategies(target):
    """A whole constrained-random verification session — drivers, monitors,
    scoreboards, coverage — must be bit-identical under every strategy."""
    import json

    from repro.verify import verify

    outcomes = {}
    for strategy in (FIXPOINT, *OPTIMISED):
        result = verify(target, seed=4, cycles=700, strategy=strategy)
        outcomes[strategy] = (
            json.dumps(result.coverage.to_dict(), sort_keys=True),
            result.transactions,
            [str(v) for v in result.violations],
        )
    assert outcomes[EVENT] == outcomes[FIXPOINT]
    assert outcomes[COMPILED] == outcomes[FIXPOINT]


# -- batched lockstep differential tests --------------------------------------


from repro.rtl import BatchedSimulator  # noqa: E402

#: Per-lane stimulus for the batched differential runs: same shape (so all
#: lanes finish the same cycle and no lane overruns), different content.
BATCH_SEEDS = (77, 101, 202)


def _golden_for(label, frame):
    """The expected output pixels of DESIGNS[label] for an arbitrary frame."""
    if label in ("blur pattern", "blur custom", "flow blur-hist"):
        return flatten(golden_blur3x3(frame))
    return flatten(frame)


def _scalar_lane_reference(factory, frame, golden, strategy):
    """One lane's full scalar reference: pixels, cycles, trace, memories."""
    system = VideoSystem(factory(), frames=[frame])
    sim = Simulator(system, strategy=strategy)
    recorder = Recorder(sim, system.all_signals())
    sim.run_until(lambda: system.sink.count >= len(golden), 50_000)
    return (system.received_pixels(), sim.cycles, recorder.rows,
            [mem.dump() for mem in system.all_memories()])


@pytest.mark.parametrize("label", sorted(DESIGNS))
def test_batched_lanes_identical_to_all_scalar_strategies(label):
    """Every lane of a batched lockstep run must be bit-identical — full
    per-cycle signal traces and memory snapshots included — to a scalar
    event/fixpoint/compiled simulation of the same point."""
    factory, _ = DESIGNS[label]
    frames = [random_frame(10, 6, seed=seed) for seed in BATCH_SEEDS]
    goldens = [_golden_for(label, frame) for frame in frames]

    references = {
        strategy: [_scalar_lane_reference(factory, frame, golden, strategy)
                   for frame, golden in zip(frames, goldens)]
        for strategy in (FIXPOINT, EVENT, COMPILED)
    }
    assert references[EVENT] == references[FIXPOINT] == references[COMPILED]

    systems = [VideoSystem(factory(), frames=[frame]) for frame in frames]
    batch = BatchedSimulator(systems)
    recorders = [Recorder(batch.lane(i), systems[i].all_signals())
                 for i in range(len(systems))]
    conditions = [(lambda s=system, n=len(golden): s.sink.count >= n)
                  for system, golden in zip(systems, goldens)]
    done = batch.run_lockstep(conditions, max_cycles=50_000)

    for lane, (system, golden) in enumerate(zip(systems, goldens)):
        pixels, cycles, rows, memories = references[FIXPOINT][lane]
        assert pixels == golden
        assert system.received_pixels()[:len(golden)] == pixels
        assert done[lane] == cycles
        assert recorders[lane].rows[:len(rows)] == rows
        assert [mem.dump() for mem in system.all_memories()] == memories


@pytest.mark.parametrize("target", ["queue/sram", "vector/bram",
                                    "read_buffer/linebuffer3"])
def test_batched_verification_matrix_identical_to_scalar_sessions(target):
    """A batched seed matrix must reproduce each seed's scalar session
    exactly: coverage bins, transaction counts and violations per lane."""
    import json

    from repro.verify import verify, verify_matrix

    seeds = [4, 5, 6]

    def snapshot(result):
        return (result.seed,
                json.dumps(result.coverage.to_dict(), sort_keys=True),
                result.transactions,
                [str(v) for v in result.violations])

    scalar = [snapshot(verify(target, seed=seed, cycles=700,
                              strategy=FIXPOINT))
              for seed in seeds]
    batched = [snapshot(result)
               for result in verify_matrix(target, seeds, cycles=700)]
    assert batched == scalar
