"""Unit tests for the two-phase cycle simulator."""

import pytest

from repro.rtl import (
    CombinationalLoopError,
    Component,
    SimulationError,
    Simulator,
    pulse,
)


class Counter(Component):
    """Free-running counter used as a simple clocked design."""

    def __init__(self, width=8):
        super().__init__("counter")
        self.enable = self.signal(1, init=1)
        self.value = self.state(width)

        @self.seq
        def count():
            if self.enable.value:
                self.value.next = self.value.value + 1


class AdderChain(Component):
    """Combinational chain a -> b -> c requiring multiple settle iterations."""

    def __init__(self):
        super().__init__("chain")
        self.a = self.signal(8)
        self.b = self.signal(8)
        self.c = self.signal(8)

        @self.comb
        def stage2():
            self.c.next = self.b.value + 1

        @self.comb
        def stage1():
            self.b.next = self.a.value + 1


class Oscillator(Component):
    """A combinational loop: the settler must detect it."""

    def __init__(self):
        super().__init__("osc")
        self.x = self.signal(1)

        @self.comb
        def invert():
            self.x.next = 0 if self.x.value else 1


def test_counter_advances_one_per_cycle():
    counter = Counter()
    sim = Simulator(counter)
    sim.step(5)
    assert counter.value.value == 5
    assert sim.cycles == 5


def test_counter_respects_enable():
    counter = Counter()
    sim = Simulator(counter)
    sim.step(3)
    counter.enable.force(0)
    sim.step(4)
    assert counter.value.value == 3


def test_counter_wraps_at_width():
    counter = Counter(width=4)
    sim = Simulator(counter)
    sim.step(20)
    assert counter.value.value == 4


def test_combinational_chain_settles_in_one_step():
    chain = AdderChain()
    sim = Simulator(chain)
    chain.a.force(10)
    sim.settle()
    assert chain.b.value == 11
    assert chain.c.value == 12


def test_combinational_loop_detected():
    with pytest.raises(CombinationalLoopError):
        Simulator(Oscillator(), max_settle=8)


def test_negative_step_rejected():
    sim = Simulator(Counter())
    with pytest.raises(SimulationError):
        sim.step(-1)


def test_run_until_and_timeout():
    counter = Counter()
    sim = Simulator(counter)
    used = sim.run_until(lambda: counter.value.value == 7)
    assert used == 7
    with pytest.raises(SimulationError):
        sim.run_until(lambda: False, max_cycles=10)


def test_reset_restores_initial_state():
    counter = Counter()
    sim = Simulator(counter)
    sim.step(9)
    sim.reset()
    assert sim.cycles == 0
    assert counter.value.value == 0


def test_watchers_called_every_cycle():
    counter = Counter()
    sim = Simulator(counter)
    seen = []
    sim.add_watcher(seen.append)
    sim.step(3)
    assert seen == [1, 2, 3]


def test_pulse_drives_then_clears():
    counter = Counter()
    sim = Simulator(counter)
    counter.enable.force(0)
    pulse(sim, counter.enable, cycles=2)
    assert counter.enable.value == 0
    assert counter.value.value == 2


class DeclaredAdder(Component):
    """Combinational process with an explicit (declared) sensitivity list."""

    def __init__(self):
        super().__init__("declared")
        self.a = self.signal(8)
        self.b = self.signal(8)
        self.total = self.signal(9)
        self.evaluations = 0

        @self.comb(sensitivity=[self.a, self.b])
        def add():
            self.evaluations += 1
            self.total.next = self.a.value + self.b.value


def test_declared_sensitivity_wakes_on_inputs():
    adder = DeclaredAdder()
    sim = Simulator(adder)
    adder.a.force(3)
    adder.b.force(4)
    sim.settle()
    assert adder.total.value == 7
    adder.b.force(10)
    sim.settle()
    assert adder.total.value == 13


def test_declared_sensitivity_skips_quiescent_cycles():
    adder = DeclaredAdder()
    sim = Simulator(adder)  # event strategy by default
    after_init = adder.evaluations
    sim.step(10)  # nothing changes: the process must not be re-evaluated
    assert adder.evaluations == after_init


def test_both_comb_decorator_forms_register():
    class Both(Component):
        def __init__(self):
            super().__init__("both")
            self.x = self.signal(4)
            self.y = self.signal(4)
            self.z = self.signal(4)

            @self.comb
            def traced():
                self.y.next = self.x.value + 1

            @self.comb(sensitivity=[self.x])
            def declared():
                self.z.next = self.x.value + 2

    both = Both()
    assert len(both.comb_procs) == 2
    sim = Simulator(both)
    both.x.force(5)
    sim.settle()
    assert both.y.value == 6
    assert both.z.value == 7


def test_remove_watcher_stops_callbacks_and_reset_hooks():
    counter = Counter()
    sim = Simulator(counter)
    seen = []
    resets = []
    sim.add_watcher(seen.append, on_reset=lambda: resets.append(True))
    sim.step(2)
    sim.remove_watcher(seen.append)
    sim.step(3)
    assert seen == [1, 2], "removed watcher must not fire"
    sim.reset()
    assert resets == [], "removed watcher's reset hook must not fire"


def test_remove_watcher_matches_bound_methods_by_equality():
    class Sampler:
        def __init__(self):
            self.cycles = []

        def sample(self, cycle):
            self.cycles.append(cycle)

    counter = Counter()
    sim = Simulator(counter)
    sampler = Sampler()
    sim.add_watcher(sampler.sample)
    sim.step(1)
    # A *fresh* bound-method reference compares equal and removes it.
    sim.remove_watcher(sampler.sample)
    sim.step(2)
    assert sampler.cycles == [1]


def test_remove_watcher_unknown_callable_raises():
    sim = Simulator(Counter())
    with pytest.raises(SimulationError):
        sim.remove_watcher(lambda cycle: None)


def test_watchers_do_not_leak_across_add_remove_cycles():
    counter = Counter()
    sim = Simulator(counter)
    for _ in range(5):
        seen = []
        sim.add_watcher(seen.append, on_reset=seen.clear)
        sim.step(1)
        sim.remove_watcher(seen.append)
    assert sim._watchers == []
    assert sim._watcher_resets == []
