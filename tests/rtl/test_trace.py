"""Unit tests for the recorder and VCD writer."""

import io

from repro.rtl import Component, Recorder, Simulator, VCDWriter


class Ramp(Component):
    def __init__(self):
        super().__init__("ramp")
        self.value = self.state(8, name="value")
        self.parity = self.signal(1, name="parity")

        @self.seq
        def count():
            self.value.next = self.value.value + 1

        @self.comb
        def compute_parity():
            self.parity.next = self.value.value & 1


def test_recorder_collects_series():
    design = Ramp()
    sim = Simulator(design)
    recorder = Recorder(sim, [design.value, design.parity])
    sim.step(5)
    assert recorder.series("value") == [1, 2, 3, 4, 5]
    assert recorder.series("parity") == [1, 0, 1, 0, 1]
    assert recorder.first_cycle_where("value", 3) == 3
    assert recorder.first_cycle_where("value", 99) is None
    assert recorder.count_cycles_where("parity", 1) == 3
    assert len(recorder.rows) == 5
    assert recorder.rows[0]["cycle"] == 1


def test_vcd_writer_emits_header_and_changes():
    design = Ramp()
    sim = Simulator(design)
    output = io.StringIO()
    with VCDWriter(sim, design, output, signals=[design.value, design.parity]):
        sim.step(3)
    text = output.getvalue()
    assert "$timescale" in text
    assert "$var wire 8" in text
    assert "$var wire 1" in text
    assert "value" in text and "parity" in text
    assert "$enddefinitions" in text
    # One timestamp marker per simulated cycle.
    assert text.count("#") >= 3
    # Multi-bit values are dumped in binary with a 'b' prefix.
    assert "\nb" in text


def test_vcd_writer_stops_after_close():
    design = Ramp()
    sim = Simulator(design)
    output = io.StringIO()
    writer = VCDWriter(sim, design, output, signals=[design.value])
    sim.step(1)
    size_before = len(output.getvalue())
    writer.close()
    sim.step(5)
    assert len(output.getvalue()) == size_before


def test_recorder_detach_stops_sampling_and_keeps_rows():
    design = Ramp()
    sim = Simulator(design)
    recorder = Recorder(sim, [design.value])
    sim.step(3)
    recorder.detach()
    sim.step(4)
    assert recorder.series("value") == [1, 2, 3]
    recorder.detach()  # idempotent
    # A detached recorder no longer reacts to reset either.
    sim.reset()
    assert recorder.series("value") == [1, 2, 3]


def test_vcd_close_detaches_watcher_from_simulator():
    design = Ramp()
    sim = Simulator(design)
    output = io.StringIO()
    writer = VCDWriter(sim, design, output, signals=[design.value])
    watchers_with_writer = len(sim._watchers)
    writer.close()
    assert len(sim._watchers) == watchers_with_writer - 1
    writer.close()  # second close is a no-op
