"""Unit tests for signals and signal bundles."""

import pytest

from repro.rtl import REG, WIRE, Bits, Signal, SignalBundle, WidthError, register, wire


class TestSignal:
    def test_initial_value(self):
        sig = Signal(8, init=0x42)
        assert sig.value == 0x42
        assert sig.next == 0x42

    def test_two_phase_update(self):
        sig = Signal(8)
        sig.next = 5
        assert sig.value == 0          # not visible until commit
        assert sig.commit() is True
        assert sig.value == 5
        assert sig.commit() is False   # no further change

    def test_next_masked_to_width(self):
        sig = Signal(4)
        sig.next = 0x1F
        sig.commit()
        assert sig.value == 0xF

    def test_init_masked(self):
        assert Signal(4, init=0x12).value == 0x2

    def test_force(self):
        sig = Signal(8)
        sig.force(0x7)
        assert sig.value == 0x7
        assert sig.next == 0x7

    def test_reset(self):
        sig = Signal(8, init=3)
        sig.force(9)
        sig.reset()
        assert sig.value == 3
        assert sig.next == 3

    def test_drive_alias(self):
        sig = Signal(8)
        sig.drive(9)
        sig.commit()
        assert sig.value == 9

    def test_kinds(self):
        assert wire(1).kind == WIRE
        assert register(1).kind == REG
        with pytest.raises(WidthError):
            Signal(1, kind="latch")

    def test_zero_width_rejected(self):
        with pytest.raises(WidthError):
            Signal(0)

    def test_conversions(self):
        sig = Signal(8, init=5)
        assert int(sig) == 5
        assert bool(sig)
        assert sig == 5
        assert sig.bits == Bits(8, 5)
        assert isinstance(sig.bits, Bits)

    def test_identity_equality_between_signals(self):
        a, b = Signal(8, init=1), Signal(8, init=1)
        assert a == a
        assert not (a == b)

    def test_repr_contains_name(self):
        assert "pixel" in repr(Signal(8, name="pixel"))


class TestSignalBundle:
    def test_fields(self):
        a, b = Signal(1, name="a"), Signal(8, name="b")
        bundle = SignalBundle("bus", a=a, b=b)
        assert bundle.a is a
        assert bundle["b"] is b
        assert "a" in bundle
        assert "c" not in bundle
        assert set(bundle.signals()) == {"a", "b"}

    def test_add(self):
        bundle = SignalBundle("bus")
        sig = bundle.add("x", Signal(4, name="x"))
        assert bundle.x is sig
        assert "x" in bundle

    def test_iter(self):
        bundle = SignalBundle("bus", a=Signal(1), b=Signal(2))
        names = [name for name, _sig in bundle]
        assert names == ["a", "b"]

    def test_repr(self):
        assert "bus" in repr(SignalBundle("bus", a=Signal(1)))
